//! The safe-plan bytecode VM: flat programs over columnar registers.
//!
//! [`super::compile`] lowers a classified safe plan (including
//! dissociation `Copy` nodes and the transformed-mass leaves of both
//! oblivious bounds) into a [`Program`] — a flat `Vec` of ops — that this
//! module executes directly against the current column data. The op set:
//!
//! * [`Op::Leaf`] — the per-block complement product
//!   `1 - ∏_blocks (1 - t(mass))` over one term's current register
//!   window, where `t` is the leaf's [`Transform`]: identity for exact
//!   plans, `m^(1/k)` ([`Transform::ConjRoot`]) for the conjunctive
//!   alias upper bound, `1 - (1-m)^(1/d)` ([`Transform::DisjRoot`], `d`
//!   read from the term's runtime replication register) for the
//!   disjunctive lower bound.
//! * [`Op::Partition`] — the key-partition fold
//!   `1 - ∏_values (1 - ∏_subcomponents p)`: a k-way sorted-run merge
//!   over the binding terms' pre-sorted key registers that narrows each
//!   binding term's window to its value run and runs the embedded
//!   subcomponent product (the body) per common key value. Dissociated
//!   `Copy` terms keep their full windows and accumulate the branch
//!   count into their replication registers. The body embeds two
//!   peephole results: loop-invariant steps ([`BodyStep::Hoisted`],
//!   subcomponents containing only copied terms) are evaluated once per
//!   fold instead of per branch, and an all-leaf body is fused into an
//!   inline `(term, transform)` list with no op dispatch per branch.
//! * The expected-count mass join ([`CountProgram`]) — set-at-a-time
//!   already; it executes through the same deterministic
//!   [`exact::run_mass_join`] kernel as the interpreter, which is what
//!   makes the two paths bit-identical by construction.
//!
//! **Registers.** [`bind_program`] is the per-data half of compilation:
//! it gathers each term's live rows into columnar registers — key
//! columns for every partition level on the term's path, plus per-block
//! probability masses — sorted once, lexicographically by the term's
//! root-to-leaf key path with original row order breaking ties, then
//! collapsed to block granularity (every live row of a block shares its
//! path keys, so blocks are contiguous after the sort). That single
//! pre-sort replaces the interpreter's per-recursion-level hash
//! partitioning: every partition branch becomes a contiguous window
//! `[c0, c1) × [a0, a1)` and the recursion only moves window bounds.
//! Because ties keep original row order, block masses accumulate in the
//! interpreter's exact addition sequence, and the interpreter iterates
//! key values in ascending order, the VM performs *exactly* the
//! interpreter's floating-point operations and reproduces its results
//! bit for bit. Registers are owned and data-addressed, so the plan
//! cache memoizes them next to version stamps — an unchanged-data warm
//! hit skips the gather entirely.

use super::classify::CompiledTerm;
use super::exact::{self, MassStep};
use mrsl_util::FxHashMap;

/// Per-block mass transform applied by [`Op::Leaf`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Transform {
    /// The exact mass (safe plans, and the un-transformed side of each
    /// bound).
    Identity,
    /// `m^(1/k)` — the conjunctive upper bound for `k > 1` aliased
    /// copies; `k` is a compile-time constant of the shape.
    ConjRoot {
        /// Alias multiplicity of the term's relation.
        k: f64,
    },
    /// `1 - (1-m)^(1/d)` — the disjunctive lower bound for branch
    /// replicas; `d` is the term's runtime replication register (the
    /// transform is the identity while it stays at 1).
    DisjRoot,
}

/// One factor of a partition body, in subcomponent order. The order is
/// load-bearing: the interpreter multiplies subcomponents left to right
/// with a zero early-exit, and the VM must reproduce that exact sequence
/// of floating-point multiplications.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum BodyStep {
    /// Evaluate the op per branch.
    Eval(u32),
    /// Loop-invariant op (only copied terms below it): evaluated once per
    /// fold, multiplied in place per branch.
    Hoisted(u32),
}

/// One bytecode op. See the module docs for semantics.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Op {
    /// `1 - ∏_blocks (1 - transform(mass))` over the term's window.
    Leaf {
        /// Term register set the leaf reads.
        term: u32,
        /// Per-block mass transform.
        transform: Transform,
    },
    /// Key-partition fold over the binding terms' sorted key registers.
    Partition {
        /// `(term, level)` pairs: which terms bind the key, and at which
        /// position of their sort path this class sits.
        binding: Vec<(u32, u32)>,
        /// Terms replicated unchanged into every branch; their
        /// replication registers accumulate the branch count.
        copied: Vec<u32>,
        /// Per-branch factors in subcomponent order.
        body: Vec<BodyStep>,
        /// Peephole: when every body step is an un-hoisted leaf, the
        /// inlined `(term, transform, memoizable)` list evaluated without
        /// dispatch. A leaf is memoizable when this partition is the
        /// term's *first* binding level: its outer window is then the
        /// full register for the whole fold, so the leaf value depends
        /// only on the key value (and the term's current replication
        /// register) and can be reused across enclosing branches.
        fused: Option<Vec<(u32, Transform, bool)>>,
    },
}

/// A compiled boolean-probability (or single-bound) program.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Program {
    /// Flat op pool; ops reference each other by index.
    pub ops: Vec<Op>,
    /// Top-level connected components, multiplied without early exit
    /// (matching the interpreter's top loop).
    pub roots: Vec<u32>,
    /// Per-term sort path: the partition classes that narrow this term,
    /// root to leaf. Drives the bind-time pre-sort.
    pub paths: Vec<Vec<usize>>,
}

/// Upper/lower program pair of one dissociation candidate.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BoundsProgram {
    pub upper: Program,
    pub lower: Program,
}

/// The expected-count program: either the single-relation closed form or
/// the deterministic mass-join schedule.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CountProgram {
    /// `None`: one relation, no join classes — the closed form
    /// [`exact::single_expected_count`] applies.
    pub steps: Option<Vec<MassStep>>,
    /// Number of join classes (the mass-join assignment width).
    pub classes: usize,
}

/// One term's columnar registers, gathered and pre-sorted by
/// [`bind_program`]. Registers are owned columns, so callers may keep
/// them across executions (the plan cache stores them next to the data
/// version stamps they were gathered under).
#[derive(Debug)]
pub(crate) struct TermRegs {
    /// Key column per sort-path level, certain rows, sorted order.
    ckeys: Vec<Vec<u16>>,
    /// Key column per sort-path level, one entry per *block*, sorted
    /// order. Alternatives are collapsed to block granularity at bind
    /// time: every live row of a block shares its path keys, so blocks
    /// are contiguous after the sort and windows never split them.
    akeys: Vec<Vec<u16>>,
    /// Per-block probability mass, accumulated over the block's live
    /// alternatives in sorted-row order — the exact addition sequence the
    /// interpreter's leaf would perform, so downstream arithmetic stays
    /// bit-identical.
    amass: Vec<f64>,
    /// Number of live certain rows.
    clen: u32,
    /// Number of blocks with live alternatives.
    alen: u32,
}

/// Gathers and pre-sorts every term's live rows into columnar registers
/// (the per-execution half of compilation — the program itself is
/// data-free and cacheable).
fn bind_term(path: &[usize], ct: &CompiledTerm) -> TermRegs {
    let mut cert: Vec<u32> = ct.live_certain.iter_ones().map(|i| i as u32).collect();
    let mut alts: Vec<u32> = ct.live_alts.iter_ones().map(|i| i as u32).collect();
    let ccols: Vec<&[u16]> = path
        .iter()
        .map(|&c| ct.class_key(c).expect("sort path classes key the term").0)
        .collect();
    let acols: Vec<&[u16]> = path
        .iter()
        .map(|&c| ct.class_key(c).expect("sort path classes key the term").1)
        .collect();
    // LSD radix over the path levels: each pass is a stable counting sort,
    // so the final order is lexicographic by root-to-leaf key with the
    // initial ascending row order breaking ties. That tie-break is what
    // keeps blocks contiguous inside the deepest windows and the row
    // visit order identical to the interpreter's partition iteration.
    sort_by_path(&mut cert, &ccols);
    sort_by_path(&mut alts, &acols);
    let probs = ct.db.columns().alt_probs();
    // Collapse alternative rows to block runs: one key tuple and one
    // accumulated mass per block, visited in sorted-row order (identical
    // to the grouping the leaf op would otherwise do per execution).
    let mut heads: Vec<u32> = Vec::new();
    let mut amass: Vec<f64> = Vec::new();
    let mut i = 0;
    while i < alts.len() {
        let block = ct.alt_block[alts[i] as usize];
        heads.push(alts[i]);
        let mut mass = 0.0;
        while i < alts.len() && ct.alt_block[alts[i] as usize] == block {
            mass += probs[alts[i] as usize];
            i += 1;
        }
        amass.push(mass);
    }
    TermRegs {
        ckeys: ccols
            .iter()
            .map(|col| cert.iter().map(|&r| col[r as usize]).collect())
            .collect(),
        akeys: acols
            .iter()
            .map(|col| heads.iter().map(|&r| col[r as usize]).collect())
            .collect(),
        alen: amass.len() as u32,
        amass,
        clen: cert.len() as u32,
    }
}

/// Stable LSD counting sort of `rows` by the key columns, last level
/// first. Dictionary-encoded keys are dense small `u16`s, so counting
/// beats a comparator sort's per-comparison column indirection; per-pass
/// stability makes earlier levels dominate and keeps ties in the
/// incoming order.
fn sort_by_path(rows: &mut Vec<u32>, cols: &[&[u16]]) {
    let mut scratch = vec![0u32; rows.len()];
    for col in cols.iter().rev() {
        let max = rows.iter().map(|&r| col[r as usize]).max().unwrap_or(0) as usize;
        let mut starts = vec![0u32; max + 2];
        for &r in rows.iter() {
            starts[col[r as usize] as usize + 1] += 1;
        }
        for i in 1..starts.len() {
            starts[i] += starts[i - 1];
        }
        for &r in rows.iter() {
            let k = col[r as usize] as usize;
            scratch[starts[k] as usize] = r;
            starts[k] += 1;
        }
        std::mem::swap(rows, &mut scratch);
    }
}

/// Gathers and pre-sorts every term's registers for one program — the
/// per-data half of compilation, reusable across executions while the
/// underlying data versions are unchanged.
pub(crate) fn bind_program(program: &Program, compiled: &[CompiledTerm]) -> Vec<TermRegs> {
    program
        .paths
        .iter()
        .zip(compiled)
        .map(|(path, ct)| bind_term(path, ct))
        .collect()
}

/// Runs a boolean program against the current column data. The result is
/// the raw product over root components — callers clamp for bound modes,
/// exactly like the interpreter.
pub(crate) fn run(program: &Program, compiled: &[CompiledTerm]) -> f64 {
    run_prebound(program, &bind_program(program, compiled))
}

/// Runs a boolean program against registers bound earlier (and still
/// valid for the current data).
pub(crate) fn run_prebound(program: &Program, regs: &[TermRegs]) -> f64 {
    let mut ex = Exec {
        prog: program,
        win: regs.iter().map(|r| [0, r.clen, 0, r.alen]).collect(),
        repl: vec![1.0; regs.len()],
        memo: vec![FxHashMap::default(); program.ops.len()],
        regs,
    };
    let mut p = 1.0;
    for &root in &program.roots {
        p *= ex.eval(root);
    }
    p
}

/// Runs an expected-count program through the shared deterministic
/// kernels.
pub(crate) fn run_count(program: &CountProgram, compiled: &[CompiledTerm]) -> f64 {
    match &program.steps {
        None => exact::single_expected_count(&compiled[0]),
        Some(steps) => exact::run_mass_join(steps, compiled, program.classes),
    }
}

/// First position in `[cur, end)` whose key is `>= v` (keys are sorted).
/// Binary search instead of stepping: partition merges over a copied
/// term re-walk its full window once per branch, and galloping turns
/// that from `O(rows)` into `O(log rows)` per branch.
fn skip_to(keys: &[u16], cur: u32, end: u32, v: u16) -> u32 {
    cur + keys[cur as usize..end as usize].partition_point(|&k| k < v) as u32
}

/// First position in `[cur, end)` past the run of keys `== v`.
fn past_run(keys: &[u16], cur: u32, end: u32, v: u16) -> u32 {
    cur + keys[cur as usize..end as usize].partition_point(|&k| k <= v) as u32
}

/// Execution state: windows and replication registers per term.
struct Exec<'p> {
    prog: &'p Program,
    regs: &'p [TermRegs],
    /// `[c0, c1, a0, a1)` — current certain/alternative window per term.
    win: Vec<[u32; 4]>,
    /// Replication multiplicity per term (the lower bound's runtime `d`).
    repl: Vec<f64>,
    /// Per-partition-op memo of fused invariant-window leaf values,
    /// keyed by `(term, key value, replication register bits)`. Reuses
    /// the exact `f64` computed on the first visit, so the downstream
    /// multiplication sequence is unchanged bit for bit.
    memo: Vec<FxHashMap<(u32, u16, u64), f64>>,
}

impl Exec<'_> {
    fn eval(&mut self, op: u32) -> f64 {
        let prog = self.prog;
        match &prog.ops[op as usize] {
            Op::Leaf { term, transform } => self.leaf(*term, *transform),
            Op::Partition {
                binding,
                copied,
                body,
                fused,
            } => self.partition(op, binding, copied, body, fused.as_deref()),
        }
    }

    /// `1 - ∏_blocks (1 - t(mass))` over the term's current window; a
    /// certain row in the window decides it.
    fn leaf(&self, t: u32, tr: Transform) -> f64 {
        let r = &self.regs[t as usize];
        let [c0, c1, a0, a1] = self.win[t as usize];
        if c1 > c0 {
            return 1.0;
        }
        let repl = self.repl[t as usize];
        let mut none = 1.0;
        for &mass in &r.amass[a0 as usize..a1 as usize] {
            let m = mass.min(1.0);
            let tm = match tr {
                Transform::Identity => m,
                Transform::ConjRoot { k } => m.powf(1.0 / k),
                Transform::DisjRoot => {
                    if repl > 1.0 {
                        1.0 - (1.0 - m).powf(1.0 / repl)
                    } else {
                        m
                    }
                }
            };
            none *= (1.0 - tm).max(0.0);
        }
        1.0 - none
    }

    fn partition(
        &mut self,
        op: u32,
        binding: &[(u32, u32)],
        copied: &[u32],
        body: &[BodyStep],
        fused: Option<&[(u32, Transform, bool)]>,
    ) -> f64 {
        // Outer windows of the binding terms (restored on exit; the value
        // loop overwrites them with per-value runs).
        let outer: Vec<[u32; 4]> = binding.iter().map(|&(t, _)| self.win[t as usize]).collect();
        let mut cur: Vec<[u32; 2]> = outer.iter().map(|w| [w[0], w[2]]).collect();

        let saved_repl: Vec<f64> = copied.iter().map(|&t| self.repl[t as usize]).collect();
        if !copied.is_empty() {
            // The branch count d multiplies every copied term's
            // replication register, identically in all branches — so it
            // is applied once, before the value loop.
            let mut count = cur.clone();
            let mut d = 0.0;
            while let Some(v) = self.next_value(binding, &outer, &mut count) {
                d += 1.0;
                for (i, &(t, lvl)) in binding.iter().enumerate() {
                    let (ce, ae) = self.run_end(t, lvl, &outer[i], &count[i], v);
                    count[i] = [ce, ae];
                }
            }
            for &t in copied {
                self.repl[t as usize] *= d;
            }
        }

        let mut hoist_vals: Vec<f64> = Vec::new();
        let mut first = true;
        let mut none = 1.0;
        while let Some(v) = self.next_value(binding, &outer, &mut cur) {
            for (i, &(t, lvl)) in binding.iter().enumerate() {
                let (ce, ae) = self.run_end(t, lvl, &outer[i], &cur[i], v);
                self.win[t as usize] = [cur[i][0], ce, cur[i][1], ae];
                cur[i] = [ce, ae];
            }
            if first {
                // Loop-invariant factors: copied-only subtrees see the
                // same (un-narrowed) windows in every branch.
                for step in body {
                    if let BodyStep::Hoisted(op) = step {
                        hoist_vals.push(self.eval(*op));
                    }
                }
                first = false;
            }
            let mut p_v = 1.0;
            if let Some(leaves) = fused {
                for &(t, tr, memoizable) in leaves {
                    let p = if memoizable {
                        let key = (t, v, self.repl[t as usize].to_bits());
                        match self.memo[op as usize].get(&key) {
                            Some(&p) => p,
                            None => {
                                let p = self.leaf(t, tr);
                                self.memo[op as usize].insert(key, p);
                                p
                            }
                        }
                    } else {
                        self.leaf(t, tr)
                    };
                    p_v *= p;
                    if p_v == 0.0 {
                        break;
                    }
                }
            } else {
                let mut hi = 0;
                for step in body {
                    p_v *= match step {
                        BodyStep::Eval(op) => self.eval(*op),
                        BodyStep::Hoisted(_) => {
                            let x = hoist_vals[hi];
                            hi += 1;
                            x
                        }
                    };
                    if p_v == 0.0 {
                        break;
                    }
                }
            }
            none *= 1.0 - p_v;
            if none == 0.0 {
                break;
            }
        }

        for (i, &(t, _)) in binding.iter().enumerate() {
            self.win[t as usize] = outer[i];
        }
        for (i, &t) in copied.iter().enumerate() {
            self.repl[t as usize] = saved_repl[i];
        }
        1.0 - none
    }

    /// Advances the merge to the next key value present in *every*
    /// binding term (certain or alternative side), or `None` when any
    /// term is exhausted. Cursors are left at the start of each term's
    /// value run. Equivalent to the interpreter's sorted intersection of
    /// the per-term partition key sets.
    fn next_value(
        &self,
        binding: &[(u32, u32)],
        outer: &[[u32; 4]],
        cur: &mut [[u32; 2]],
    ) -> Option<u16> {
        let head = |cur: &[[u32; 2]], i: usize| -> Option<u16> {
            let (t, lvl) = binding[i];
            let r = &self.regs[t as usize];
            let c = (cur[i][0] < outer[i][1]).then(|| r.ckeys[lvl as usize][cur[i][0] as usize]);
            let a = (cur[i][1] < outer[i][3]).then(|| r.akeys[lvl as usize][cur[i][1] as usize]);
            match (c, a) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        };
        let mut v = head(cur, 0)?;
        for i in 1..binding.len() {
            v = v.max(head(cur, i)?);
        }
        loop {
            let mut stable = true;
            for i in 0..binding.len() {
                let (t, lvl) = binding[i];
                let r = &self.regs[t as usize];
                let ck = &r.ckeys[lvl as usize];
                let ak = &r.akeys[lvl as usize];
                cur[i][0] = skip_to(ck, cur[i][0], outer[i][1], v);
                cur[i][1] = skip_to(ak, cur[i][1], outer[i][3], v);
                let h = head(cur, i)?;
                if h > v {
                    v = h;
                    stable = false;
                }
            }
            if stable {
                return Some(v);
            }
        }
    }

    /// End of the `v` run starting at `cur` in term `t`'s level-`lvl` key
    /// registers, bounded by the outer window.
    fn run_end(&self, t: u32, lvl: u32, outer: &[u32; 4], cur: &[u32; 2], v: u16) -> (u32, u32) {
        let r = &self.regs[t as usize];
        let ck = &r.ckeys[lvl as usize];
        let ak = &r.akeys[lvl as usize];
        (
            past_run(ck, cur[0], outer[1], v),
            past_run(ak, cur[1], outer[3], v),
        )
    }
}
