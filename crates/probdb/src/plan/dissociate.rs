//! Dissociation bounds for unsafe queries.
//!
//! The safe-plan recursion gives up on two kinds of boolean conjunctive
//! queries: non-hierarchical shapes (`R(x), S(x,y), T(y)`) and self-joins
//! (aliased scans of one relation share their block choices). Gatterbauer
//! & Suciu's *dissociation* recovers deterministic guarantees for both:
//! make the offending shared variable *independent copies*, evaluate the
//! now-safe query exactly, and the answer brackets the true probability
//! depending on how the copies' probabilities are chosen (their
//! "oblivious bounds"):
//!
//! * **Branch replication** (non-hierarchical shapes). A scan that does
//!   not bind a partition key is replicated into every key branch. The
//!   copies land in *disjunctive* positions (one per branch of the
//!   existential `1 - ∏(1 - p_v)`), so keeping each copy's Bernoulli mass
//!   `m` unchanged yields an **upper** bound, and the dual *propagation*
//!   masses `1 - (1-m)^(1/d)` (whose `d`-fold disjunction reproduces `m`)
//!   yield a **lower** bound.
//! * **Alias copies** (self-joins). Aliased scans of one relation are
//!   treated as independent copies. These separate *conjunctively* in the
//!   safe plan (aliased leaves co-travel through every key partition —
//!   their blocks agree on every join key — until a subcomponent product
//!   splits them), so the dual choice applies: `m^(1/k)` per copy (whose
//!   `k`-fold conjunction reproduces `m`) is the **upper** bound and the
//!   unchanged mass the **lower** bound.
//!
//! Soundness leans on the classifier's key-uniqueness check: every live
//! alternative of a block agrees on each join key its scan binds, so a
//! block contributes the *same* Bernoulli event (`mass = Σ live p`) to
//! every branch or alias it is copied into — exactly the single-variable
//! setting of the oblivious-bounds theorems. Key-straddling blocks and
//! aliases with different live sets are therefore rejected here and fall
//! back to Monte Carlo.
//!
//! When several minimal dissociations exist, each yields valid bounds, so
//! the bracket is their intersection — the ensemble's best upper and
//! lower bound (the paper's "inference ensembles" restated for query
//! evaluation).

use super::classify::{
    alias_groups, alias_live_mismatch, components, key_straddle, shape_violation, CompiledTerm,
    Resolved,
};
use super::exact::{leaf_probability_with, Rows};
use super::report::SafePlan;

/// One way to make the query hierarchical: class memberships to add
/// (dissociating the member term on that class's variable).
#[derive(Debug, Clone)]
pub(crate) struct Dissociation {
    /// `(class, term)` memberships added; empty for pure alias
    /// dissociations (the shape was already hierarchical).
    pub extensions: Vec<(usize, usize)>,
}

/// How [`crate::Statistic::ProbabilityBounds`] should be answered.
#[derive(Debug)]
pub(crate) enum BoundsPlan {
    /// The query is safe: the bracket collapses to the exact probability.
    Exact,
    /// Dissociation bounds apply; every entry is a valid bracket and the
    /// answer intersects them.
    Dissociate(Vec<Dissociation>),
    /// No sound dissociation exists (key-straddling blocks, or aliases
    /// with different live sets): Monte Carlo, with the reason.
    Sample(String),
}

/// Decides how to bound the boolean probability of a resolved, compiled
/// multi-relation query, given the classifier's verdict.
pub(crate) fn plan_bounds(
    resolved: &Resolved,
    compiled: &[CompiledTerm],
    class: super::report::PlanClass,
) -> BoundsPlan {
    use super::report::PlanClass;
    match class {
        PlanClass::Liftable => BoundsPlan::Exact,
        PlanClass::KeyCorrelated => BoundsPlan::Sample(
            key_straddle(resolved, compiled).unwrap_or_else(|| "key-correlated".into()),
        ),
        PlanClass::Dissociable | PlanClass::NonHierarchical => {
            // The classifier checks keys only after the shape, so a
            // non-hierarchical verdict may still hide straddling blocks —
            // and the bounds need key uniqueness everywhere.
            if let Some(reason) = key_straddle(resolved, compiled) {
                return BoundsPlan::Sample(reason);
            }
            if let Some(reason) = alias_live_mismatch(resolved, compiled) {
                return BoundsPlan::Sample(reason);
            }
            if shape_violation(resolved, &[]).is_none() {
                // Hierarchical already: only the aliases dissociate.
                return BoundsPlan::Dissociate(vec![Dissociation {
                    extensions: Vec::new(),
                }]);
            }
            let candidates = minimal_dissociations(resolved);
            if candidates.is_empty() {
                BoundsPlan::Sample("no admissible dissociation".into())
            } else {
                BoundsPlan::Dissociate(candidates)
            }
        }
        // The classifier never hands other classes to the bounds planner.
        _ => BoundsPlan::Sample("not a bounds-eligible plan class".into()),
    }
}

/// Process-wide count of [`minimal_dissociations`] invocations — the
/// breadth-first candidate search is the expensive cold half of bounds
/// planning, and warm plan-cache hits must skip it entirely. Exposed (as
/// [`dissociation_search_count`]) so tests and benches can assert the
/// skip instead of inferring it from timings.
static DISSOCIATION_SEARCHES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// How many times the candidate dissociation search has run in this
/// process. Warm bounds queries (plan-cache hits) leave it unchanged:
/// cached plans carry their candidates and compiled bracket programs.
pub fn dissociation_search_count() -> u64 {
    DISSOCIATION_SEARCHES.load(std::sync::atomic::Ordering::Relaxed)
}

/// All minimal-size extension sets that make the shape hierarchical and
/// admit a dissociated decomposition. Searches breadth-first by extension
/// count (size 1, then 2); beyond that it falls back to the always-valid
/// full dissociation (every term in every class).
fn minimal_dissociations(resolved: &Resolved) -> Vec<Dissociation> {
    DISSOCIATION_SEARCHES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let pairs: Vec<(usize, usize)> = (0..resolved.classes.len())
        .flat_map(|c| {
            let members = resolved.classes[c].terms();
            (0..resolved.terms.len())
                .filter(move |t| !members.contains(t))
                .map(move |t| (c, t))
        })
        .collect();
    let admissible = |ext: &[(usize, usize)]| {
        shape_violation(resolved, ext).is_none() && decompose(resolved, ext).is_some()
    };
    let singles: Vec<Dissociation> = pairs
        .iter()
        .filter(|&&p| admissible(&[p]))
        .map(|&p| Dissociation {
            extensions: vec![p],
        })
        .collect();
    if !singles.is_empty() {
        return singles;
    }
    let mut doubles = Vec::new();
    for i in 0..pairs.len() {
        for j in i + 1..pairs.len() {
            let ext = [pairs[i], pairs[j]];
            if admissible(&ext) {
                doubles.push(Dissociation {
                    extensions: ext.to_vec(),
                });
            }
        }
    }
    if !doubles.is_empty() {
        return doubles;
    }
    if admissible(&pairs) {
        vec![Dissociation { extensions: pairs }]
    } else {
        Vec::new()
    }
}

/// The evaluated ensemble: the intersected bracket, the decomposition of
/// the candidate with the tightest upper bound, and the dissociated
/// variables behind each side of the bracket.
#[derive(Debug)]
pub(crate) struct DissociatedBounds {
    pub lower: f64,
    pub upper: f64,
    pub plan: SafePlan,
    /// Human-readable dissociation entries for the report.
    pub dissociated: Vec<String>,
}

/// Evaluates every candidate dissociation on both bound modes and
/// intersects the brackets (reference interpreter; the bytecode VM runs
/// compiled candidate programs through the same [`intersect_candidates`] /
/// [`describe_bounds`] pair, so the two paths pick identical winners).
pub(crate) fn evaluate_bounds(
    resolved: &Resolved,
    compiled: &[CompiledTerm],
    candidates: &[Dissociation],
) -> DissociatedBounds {
    let evals: Vec<(f64, f64)> = candidates
        .iter()
        .map(|cand| {
            (
                bound_probability(resolved, compiled, &cand.extensions, Mode::Upper),
                bound_probability(resolved, compiled, &cand.extensions, Mode::Lower),
            )
        })
        .collect();
    let choice = intersect_candidates(&evals);
    let (plan, dissociated) = describe_bounds(resolved, candidates, &choice);
    DissociatedBounds {
        lower: choice.lower,
        upper: choice.upper,
        plan,
        dissociated,
    }
}

/// The intersected bracket and which candidate won each side.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BracketChoice {
    pub lower: f64,
    pub upper: f64,
    pub upper_at: usize,
    pub lower_at: usize,
}

/// Intersects per-candidate `(upper, lower)` brackets: the tightest of
/// each side wins (strict comparisons, first winner kept), with a midpoint
/// collapse when floating point crosses an (in exact arithmetic) ordered
/// pair.
pub(crate) fn intersect_candidates(evals: &[(f64, f64)]) -> BracketChoice {
    debug_assert!(!evals.is_empty());
    let mut best_upper = f64::INFINITY;
    let mut best_lower = f64::NEG_INFINITY;
    let (mut upper_at, mut lower_at) = (0usize, 0usize);
    for (i, &(upper, lower)) in evals.iter().enumerate() {
        if upper < best_upper {
            best_upper = upper;
            upper_at = i;
        }
        if lower > best_lower {
            best_lower = lower;
            lower_at = i;
        }
    }
    if best_lower > best_upper {
        let mid = 0.5 * (best_lower + best_upper);
        best_lower = mid;
        best_upper = mid;
    }
    BracketChoice {
        lower: best_lower,
        upper: best_upper,
        upper_at,
        lower_at,
    }
}

/// Renders the report artifacts of an intersected bracket: the winning
/// upper candidate's decomposition and the dissociated-variable entries of
/// both winners.
pub(crate) fn describe_bounds(
    resolved: &Resolved,
    candidates: &[Dissociation],
    choice: &BracketChoice,
) -> (SafePlan, Vec<String>) {
    let plan = decompose(resolved, &candidates[choice.upper_at].extensions)
        .expect("candidate admissibility includes decomposability");
    let mut dissociated = Vec::new();
    for group in alias_groups(resolved) {
        let names: Vec<String> = group
            .iter()
            .map(|&t| format!("`{}`", resolved.terms[t].name))
            .collect();
        dissociated.push(format!(
            "{} ≡ independent copies of `{}`",
            names.join(", "),
            resolved.terms[group[0]].relation
        ));
    }
    for &i in &[choice.upper_at, choice.lower_at] {
        for &(c, t) in &candidates[i].extensions {
            let entry = format!(
                "`{}` ⇢ [{}]",
                resolved.terms[t].name, resolved.classes[c].label
            );
            if !dissociated.contains(&entry) {
                dissociated.push(entry);
            }
        }
    }
    (plan, dissociated)
}

/// Which side of the bracket a recursion computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    Upper,
    Lower,
}

/// Extended per-class term sets: resolved memberships plus dissociated
/// copies.
pub(crate) fn extended_class_terms(resolved: &Resolved, ext: &[(usize, usize)]) -> Vec<Vec<usize>> {
    resolved
        .classes
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            let mut terms = c.terms();
            terms.extend(ext.iter().filter(|&&(ec, _)| ec == ci).map(|&(_, et)| et));
            terms.sort_unstable();
            terms.dedup();
            terms
        })
        .collect()
}

/// The root class of a dissociated component: covers every term under the
/// extended memberships and still *binds* at least one of them (a key
/// column to partition on must exist somewhere).
pub(crate) fn covering_root(
    resolved: &Resolved,
    class_terms: &[Vec<usize>],
    comp: &[usize],
    active: &[usize],
) -> Option<usize> {
    active.iter().copied().find(|&c| {
        comp.iter().all(|t| class_terms[c].contains(t))
            && comp.iter().any(|t| resolved.classes[c].terms().contains(t))
    })
}

/// One bound of the dissociated query, by the generalized safe-plan
/// recursion: terms that bind the partition key partition as usual; terms
/// dissociated on it are replicated into every branch, accumulating the
/// branch count into their replication multiplicity for the lower bound's
/// mass transform.
fn bound_probability(
    resolved: &Resolved,
    compiled: &[CompiledTerm],
    ext: &[(usize, usize)],
    mode: Mode,
) -> f64 {
    let class_terms = extended_class_terms(resolved, ext);
    let alias_k = alias_multiplicities(resolved);
    let all: Vec<usize> = (0..compiled.len()).collect();
    let active: Vec<usize> = (0..resolved.classes.len()).collect();
    let live = Rows::live(compiled);
    let rows: Vec<&Rows> = live.iter().collect();
    let mut repl = vec![1.0f64; compiled.len()];
    let cx = BoundCx {
        resolved,
        compiled,
        class_terms: &class_terms,
        alias_k: &alias_k,
        mode,
    };
    let mut p = 1.0;
    for comp in components(&class_terms, &all, &active) {
        p *= component_bound(&cx, &comp, &active, &rows, &mut repl);
    }
    p.clamp(0.0, 1.0)
}

/// Alias multiplicity per term: how many scans share its relation.
pub(crate) fn alias_multiplicities(resolved: &Resolved) -> Vec<f64> {
    resolved
        .terms
        .iter()
        .map(|t| {
            resolved
                .terms
                .iter()
                .filter(|o| o.relation == t.relation)
                .count() as f64
        })
        .collect()
}

struct BoundCx<'a, 'b> {
    resolved: &'a Resolved<'b>,
    compiled: &'a [CompiledTerm<'b>],
    class_terms: &'a [Vec<usize>],
    alias_k: &'a [f64],
    mode: Mode,
}

fn component_bound(
    cx: &BoundCx,
    comp: &[usize],
    active: &[usize],
    rows: &[&Rows],
    repl: &mut [f64],
) -> f64 {
    if comp.len() == 1 {
        let t = comp[0];
        return leaf_bound(cx, t, rows[t], repl[t]);
    }
    let root = covering_root(cx.resolved, cx.class_terms, comp, active)
        .expect("admissible dissociations decompose");
    let binding: Vec<usize> = comp
        .iter()
        .copied()
        .filter(|t| cx.resolved.classes[root].terms().contains(t))
        .collect();
    let copied: Vec<usize> = comp
        .iter()
        .copied()
        .filter(|t| !binding.contains(t))
        .collect();

    // Partition each binding term's live rows by the root-class key.
    let mut parts: Vec<mrsl_util::FxHashMap<u16, Rows>> = Vec::with_capacity(binding.len());
    for &t in &binding {
        let (ckey, akey) = cx.compiled[t]
            .class_key(root)
            .expect("binding term has key");
        let mut map: mrsl_util::FxHashMap<u16, Rows> = mrsl_util::FxHashMap::default();
        for &r in &rows[t].certain {
            map.entry(ckey[r as usize]).or_default().certain.push(r);
        }
        for &r in &rows[t].alts {
            map.entry(akey[r as usize]).or_default().alts.push(r);
        }
        parts.push(map);
    }
    let mut values: Vec<u16> = parts
        .iter()
        .min_by_key(|m| m.len())
        .map(|m| m.keys().copied().collect())
        .unwrap_or_default();
    values.sort_unstable();
    values.retain(|v| parts.iter().all(|m| m.contains_key(v)));

    let d = values.len() as f64;
    let remaining: Vec<usize> = active.iter().copied().filter(|&c| c != root).collect();
    let subcomps = components(cx.class_terms, comp, &remaining);
    // The replication multiplier is identical in every branch (the branch
    // count `d`), so it is applied once before the value loop and undone
    // after — no per-branch `repl` clone. Likewise the branch views start
    // as the outer rows (copied terms replicate unchanged) and only the
    // binding entries are retargeted per key value.
    let saved_repl: Vec<f64> = copied.iter().map(|&t| repl[t]).collect();
    for &t in &copied {
        repl[t] *= d;
    }
    let mut branch_rows: Vec<&Rows> = rows.to_vec();
    let mut none = 1.0; // P(no key value produces a result)
    for v in values {
        for (pi, &t) in binding.iter().enumerate() {
            branch_rows[t] = parts[pi]
                .get(&v)
                .expect("value present in every binding term");
        }
        let mut p_v = 1.0;
        for sub in &subcomps {
            p_v *= component_bound(cx, sub, &remaining, &branch_rows, repl);
            if p_v == 0.0 {
                break;
            }
        }
        none *= 1.0 - p_v;
        if none == 0.0 {
            break;
        }
    }
    for (i, &t) in copied.iter().enumerate() {
        repl[t] = saved_repl[i];
    }
    1.0 - none
}

/// A dissociated leaf: the exact leaf with the mode's mass transform.
///
/// * Upper: alias copies are a conjunctive dissociation — `m^(1/k)` per
///   copy multiplies back to `m`; branch replicas keep `m` (disjunctive
///   copies at the original probability only over-count).
/// * Lower: branch replicas take the propagation mass `1 - (1-m)^(1/d)`
///   — their `d`-fold disjunction reproduces `m`; alias copies keep `m`
///   (conjunctive copies at the original probability only under-count).
fn leaf_bound(cx: &BoundCx, t: usize, rows: &Rows, repl: f64) -> f64 {
    let k = cx.alias_k[t];
    match cx.mode {
        Mode::Upper => leaf_probability_with(&cx.compiled[t], rows, |m| {
            if k > 1.0 {
                m.powf(1.0 / k)
            } else {
                m
            }
        }),
        Mode::Lower => leaf_probability_with(&cx.compiled[t], rows, |m| {
            if repl > 1.0 {
                1.0 - (1.0 - m).powf(1.0 / repl)
            } else {
                m
            }
        }),
    }
}

/// The dissociated decomposition: like the classifier's, but the root
/// class only needs to cover the component under the *extended*
/// memberships, and terms it does not bind render as [`SafePlan::Copy`].
/// Returns `None` when some component has no admissible root — such
/// extension sets are rejected during the candidate search.
pub(crate) fn decompose(resolved: &Resolved, ext: &[(usize, usize)]) -> Option<SafePlan> {
    let class_terms = extended_class_terms(resolved, ext);
    let all: Vec<usize> = (0..resolved.terms.len()).collect();
    let active: Vec<usize> = (0..resolved.classes.len()).collect();
    let copied_on: Vec<Vec<usize>> = (0..resolved.terms.len())
        .map(|t| {
            ext.iter()
                .filter(|&&(_, et)| et == t)
                .map(|&(c, _)| c)
                .collect()
        })
        .collect();
    let comps = components(&class_terms, &all, &active);
    let mut inputs = Vec::with_capacity(comps.len());
    for comp in comps {
        inputs.push(decompose_component(
            resolved,
            &class_terms,
            &copied_on,
            &comp,
            &active,
        )?);
    }
    Some(if inputs.len() == 1 {
        inputs.pop().expect("one input")
    } else {
        SafePlan::KeyPartition {
            key: "⊤".into(),
            inputs,
        }
    })
}

fn decompose_component(
    resolved: &Resolved,
    class_terms: &[Vec<usize>],
    copied_on: &[Vec<usize>],
    comp: &[usize],
    active: &[usize],
) -> Option<SafePlan> {
    if comp.len() == 1 {
        let t = comp[0];
        let name = resolved.terms[t].name.clone();
        return Some(if copied_on[t].is_empty() {
            SafePlan::Scan { relation: name }
        } else {
            let keys: Vec<String> = copied_on[t]
                .iter()
                .map(|&c| resolved.classes[c].label.clone())
                .collect();
            SafePlan::Copy {
                relation: name,
                key: keys.join(" ∥ "),
            }
        });
    }
    let root = covering_root(resolved, class_terms, comp, active)?;
    let remaining: Vec<usize> = active.iter().copied().filter(|&c| c != root).collect();
    let inputs = components(class_terms, comp, &remaining)
        .into_iter()
        .map(|sub| decompose_component(resolved, class_terms, copied_on, &sub, &remaining))
        .collect::<Option<Vec<_>>>()?;
    Some(SafePlan::KeyPartition {
        key: resolved.classes[root].label.clone(),
        inputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Query;
    use crate::block::{Alternative, Block};
    use crate::catalog::Catalog;
    use crate::database::ProbDb;
    use crate::plan::classify::{classify, resolve};
    use crate::plan::report::PlanClass;
    use mrsl_relation::{AttrId, CompleteTuple, Schema};

    fn alt(values: Vec<u16>, prob: f64) -> Alternative {
        Alternative {
            tuple: CompleteTuple::from_values(values),
            prob,
        }
    }

    /// The classic unsafe chain `R(x), S(x,y), T(y)` over tiny relations.
    /// Tuples are "present" when their `ok` attribute passes the
    /// selection, so every block keeps a unique join key among its live
    /// alternatives (the precondition dissociation shares with the safe
    /// plan).
    fn chain_catalog() -> Catalog {
        let one = |n: &str| {
            Schema::builder()
                .attribute(n, ["v0", "v1"])
                .attribute("ok", ["no", "yes"])
                .build()
                .unwrap()
        };
        let two = Schema::builder()
            .attribute("x", ["v0", "v1"])
            .attribute("y", ["v0", "v1"])
            .attribute("ok", ["no", "yes"])
            .build()
            .unwrap();
        let pair = |k: u16, p: f64| vec![alt(vec![k, 0], 1.0 - p), alt(vec![k, 1], p)];
        let spair =
            |x: u16, y: u16, p: f64| vec![alt(vec![x, y, 0], 1.0 - p), alt(vec![x, y, 1], p)];
        let mut r = ProbDb::new(one("x"));
        r.push_block(Block::new(0, pair(0, 0.6)).unwrap()).unwrap();
        r.push_block(Block::new(1, pair(1, 0.5)).unwrap()).unwrap();
        let mut s = ProbDb::new(two);
        s.push_block(Block::new(0, spair(0, 1, 0.7)).unwrap())
            .unwrap();
        s.push_block(Block::new(1, spair(1, 0, 0.4)).unwrap())
            .unwrap();
        s.push_block(Block::new(2, spair(0, 0, 0.5)).unwrap())
            .unwrap();
        let mut t = ProbDb::new(one("y"));
        t.push_block(Block::new(0, pair(0, 0.8)).unwrap()).unwrap();
        t.push_block(Block::new(1, pair(1, 0.3)).unwrap()).unwrap();
        let mut catalog = Catalog::new();
        catalog.add("r", r).unwrap();
        catalog.add("s", s).unwrap();
        catalog.add("t", t).unwrap();
        catalog
    }

    fn chain_query() -> Query {
        use crate::predicate::Predicate;
        use mrsl_relation::ValueId;
        let ok2 = Predicate::eq(AttrId(1), ValueId(1));
        let ok3 = Predicate::eq(AttrId(2), ValueId(1));
        Query::scan("r")
            .filter(ok2.clone())
            .join_on(Query::scan("s").filter(ok3), [(AttrId(0), AttrId(0))])
            .join_on_rel("s", Query::scan("t").filter(ok2), [(AttrId(1), AttrId(0))])
    }

    #[test]
    fn chain_query_has_single_extension_dissociations() {
        let catalog = chain_catalog();
        let flat = chain_query().flatten().unwrap();
        let resolved = resolve(&flat, |n| catalog.get(n)).unwrap();
        let candidates = minimal_dissociations(&resolved);
        assert!(!candidates.is_empty());
        for c in &candidates {
            assert_eq!(c.extensions.len(), 1, "{:?}", c.extensions);
            assert!(shape_violation(&resolved, &c.extensions).is_none());
        }
        // Dissociating R into the y-class and T into the x-class both
        // repair the chain.
        let exts: Vec<(usize, usize)> = candidates.iter().map(|c| c.extensions[0]).collect();
        assert!(exts.contains(&(1, 0)) || exts.contains(&(0, 0)) || exts.len() >= 2);
    }

    #[test]
    fn chain_bounds_bracket_the_brute_force_probability() {
        let catalog = chain_catalog();
        let q = chain_query();
        let brute = crate::testutil::oracle_probability(&catalog, &q).unwrap();
        let flat = q.flatten().unwrap();
        let resolved = resolve(&flat, |n| catalog.get(n)).unwrap();
        let compiled: Vec<CompiledTerm> = resolved
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| CompiledTerm::compile(i, t, &resolved.classes))
            .collect();
        let classification = classify(&resolved, &compiled);
        assert_eq!(classification.class, PlanClass::NonHierarchical);
        let BoundsPlan::Dissociate(cands) = plan_bounds(&resolved, &compiled, classification.class)
        else {
            panic!("chain query must dissociate");
        };
        let bounds = evaluate_bounds(&resolved, &compiled, &cands);
        assert!(
            bounds.lower - 1e-12 <= brute && brute <= bounds.upper + 1e-12,
            "bracket [{}, {}] misses brute {}",
            bounds.lower,
            bounds.upper,
            brute
        );
        assert!(bounds.upper - bounds.lower < 0.5, "vacuous bracket");
        assert!(!bounds.dissociated.is_empty());
        assert!(
            bounds.plan.render().contains("copy"),
            "{}",
            bounds.plan.render()
        );
    }

    #[test]
    fn hierarchical_queries_collapse_to_exact() {
        // Only aliases dissociate on hierarchical shapes; with none the
        // planner reports Exact.
        let catalog = chain_catalog();
        let q = Query::scan("r").join_on("s", [(AttrId(0), AttrId(0))]);
        let flat = q.flatten().unwrap();
        let resolved = resolve(&flat, |n| catalog.get(n)).unwrap();
        let compiled: Vec<CompiledTerm> = resolved
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| CompiledTerm::compile(i, t, &resolved.classes))
            .collect();
        let classification = classify(&resolved, &compiled);
        assert_eq!(classification.class, PlanClass::Liftable);
        assert!(matches!(
            plan_bounds(&resolved, &compiled, classification.class),
            BoundsPlan::Exact
        ));
    }
}
