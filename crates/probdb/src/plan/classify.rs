//! Query resolution and safe-plan classification.
//!
//! Resolution turns a [`Query`](crate::algebra::Query) tree into its
//! conjunctive form bound to actual relations: one [`Term`] per scan with
//! its combined (simplified) predicate, and the equi-join conditions
//! collapsed into join-variable *classes* (equivalence classes of
//! `relation.attribute` pairs under the join conditions).
//!
//! Classification then decides whether the boolean query is *safe* for
//! extensional evaluation, following the hierarchical-query criterion of
//! the lifted-inference literature (Dalvi & Suciu; Gatterbauer & Suciu):
//!
//! 1. **Shape.** For every two join classes, the sets of relations they
//!    touch must be nested or disjoint. A violation (e.g. `R(x), S(x,y),
//!    T(y)`) makes the query non-hierarchical — `#P`-hard in general — and
//!    routes it to Monte Carlo.
//! 2. **Keys.** Within every block, all alternatives that survive the
//!    selection must agree on each join-key attribute. If a block
//!    straddles two key values, the per-key partitions are *correlated*
//!    (the block can serve either key but not both) and the independent
//!    product the safe plan relies on is wrong — also Monte Carlo. Because
//!    deeper recursion levels only ever shrink the per-block alternative
//!    sets, checking this once at the top level covers every level.
//!
//! Queries passing both checks are [`PlanClass::Liftable`]; the
//! decomposition that certifies it is recorded as a [`SafePlan`].

use super::report::{PlanClass, SafePlan};
use crate::algebra::{Flattened, ResolvedPair};
use crate::column::Bitmap;
use crate::database::ProbDb;
use crate::predicate::Predicate;
use crate::ProbDbError;
use mrsl_relation::AttrId;

/// One scan bound to its relation, with the combined selection.
#[derive(Debug)]
pub(crate) struct Term<'a> {
    /// Name the scan is addressed by: its alias, or the relation name.
    pub name: String,
    /// Catalog relation the scan reads (shared across aliased scans).
    pub relation: String,
    pub db: &'a ProbDb,
    pub pred: Predicate,
    /// `(class index, representative attribute)` for every class this term
    /// participates in, in ascending class order. When the term has several
    /// attributes in one class, the representative is the first; the others
    /// are equality-constrained into the live bitmaps.
    pub class_attrs: Vec<(usize, AttrId)>,
}

/// One join-variable class: the `relation.attribute` pairs unified by the
/// query's join conditions.
#[derive(Debug)]
pub(crate) struct Class {
    /// `(term index, attribute)` members, in discovery order.
    pub members: Vec<(usize, AttrId)>,
    /// Human-readable label, e.g. `sensors.station = readings.station`.
    pub label: String,
}

impl Class {
    /// The distinct term indices touching this class, ascending.
    pub fn terms(&self) -> Vec<usize> {
        let mut t: Vec<usize> = self.members.iter().map(|&(i, _)| i).collect();
        t.sort_unstable();
        t.dedup();
        t
    }
}

/// A query resolved against relations: terms plus join classes.
#[derive(Debug)]
pub(crate) struct Resolved<'a> {
    pub terms: Vec<Term<'a>>,
    pub classes: Vec<Class>,
}

/// Resolves the conjunctive form against a relation lookup (a catalog, or
/// the single-table shim's one-entry view), simplifying predicates,
/// unifying join attributes into classes and checking dictionary
/// compatibility of every join pair.
pub(crate) fn resolve<'a>(
    flat: &Flattened,
    lookup: impl Fn(&str) -> Option<&'a ProbDb>,
) -> Result<Resolved<'a>, ProbDbError> {
    let mut terms: Vec<Term<'a>> = Vec::with_capacity(flat.terms.len());
    for t in &flat.terms {
        let db =
            lookup(&t.relation).ok_or_else(|| ProbDbError::UnknownRelation(t.relation.clone()))?;
        let pred = t.pred.simplify();
        let attrs = pred.attrs();
        if let Some(a) = attrs.iter().find(|a| a.index() >= db.schema().attr_count()) {
            return Err(ProbDbError::UnknownRelation(format!(
                "{}.#{} (attribute out of range)",
                t.relation,
                a.index()
            )));
        }
        terms.push(Term {
            name: t.name.clone(),
            relation: t.relation.clone(),
            db,
            pred,
            class_attrs: Vec::new(),
        });
    }

    // Union-find over (term, attr) pairs to build the join classes.
    let mut nodes: Vec<(usize, AttrId)> = Vec::new();
    let mut parent: Vec<usize> = Vec::new();
    let node_of =
        |nodes: &mut Vec<(usize, AttrId)>, parent: &mut Vec<usize>, key: (usize, AttrId)| {
            match nodes.iter().position(|&n| n == key) {
                Some(i) => i,
                None => {
                    nodes.push(key);
                    parent.push(nodes.len() - 1);
                    nodes.len() - 1
                }
            }
        };
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for &ResolvedPair {
        left_term,
        left_attr,
        right_term,
        right_attr,
    } in &flat.joins
    {
        for &(term, attr) in &[(left_term, left_attr), (right_term, right_attr)] {
            if attr.index() >= terms[term].db.schema().attr_count() {
                return Err(ProbDbError::UnknownRelation(format!(
                    "{}.#{} (join attribute out of range)",
                    terms[term].name,
                    attr.index()
                )));
            }
        }
        let (ls, rs) = (terms[left_term].db.schema(), terms[right_term].db.schema());
        if !crate::catalog::same_dictionary(ls.attr(left_attr), rs.attr(right_attr)) {
            return Err(ProbDbError::IncompatibleJoinDomains {
                left: format!("{}.{}", terms[left_term].name, ls.attr(left_attr).name()),
                right: format!("{}.{}", terms[right_term].name, rs.attr(right_attr).name()),
            });
        }
        let a = node_of(&mut nodes, &mut parent, (left_term, left_attr));
        let b = node_of(&mut nodes, &mut parent, (right_term, right_attr));
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let mut classes: Vec<Class> = Vec::new();
    let mut root_class: Vec<(usize, usize)> = Vec::new(); // (root node, class idx)
    for (i, &node) in nodes.iter().enumerate() {
        let root = find(&mut parent, i);
        let class = match root_class.iter().find(|&&(r, _)| r == root) {
            Some(&(_, c)) => c,
            None => {
                classes.push(Class {
                    members: Vec::new(),
                    label: String::new(),
                });
                root_class.push((root, classes.len() - 1));
                classes.len() - 1
            }
        };
        classes[class].members.push(node);
    }
    for class in &mut classes {
        let label: Vec<String> = class
            .members
            .iter()
            .map(|&(t, a)| format!("{}.{}", terms[t].name, terms[t].db.schema().attr(a).name()))
            .collect();
        class.label = label.join(" = ");
    }
    // Each term learns which classes it participates in (ascending class
    // order, since `classes` is iterated in index order) and which of its
    // attributes represents the class.
    for (ci, class) in classes.iter().enumerate() {
        for t in class.terms() {
            let rep = class
                .members
                .iter()
                .find(|&&(ti, _)| ti == t)
                .map(|&(_, a)| a)
                .expect("term is a member");
            terms[t].class_attrs.push((ci, rep));
        }
    }
    Ok(Resolved { terms, classes })
}

/// A term compiled against its relation's columnar store: live-row bitmaps
/// (selection ∧ intra-class attribute equality), per-alternative block
/// ids, and per-class key columns.
pub(crate) struct CompiledTerm<'a> {
    /// Addressing name of the scan (alias or relation name).
    pub name: String,
    /// Catalog relation the scan reads; aliased scans of one relation
    /// share this (and their block choices — they are *not* independent).
    pub relation: String,
    pub db: &'a ProbDb,
    /// One bit per certain row: does it survive selection and intra-class
    /// equality?
    pub live_certain: Bitmap,
    /// One bit per alternative row, same condition.
    pub live_alts: Bitmap,
    /// Block index of each alternative row.
    pub alt_block: Vec<u32>,
    /// `(class index, certain key column, alternative key column)` for
    /// every class this term participates in.
    pub keys: Vec<(usize, &'a [u16], &'a [u16])>,
}

impl<'a> CompiledTerm<'a> {
    pub(crate) fn compile(term_idx: usize, term: &Term<'a>, classes: &[Class]) -> Self {
        let cols = term.db.columns();
        let mut live_certain = term.pred.eval_columns(cols.certain());
        let mut live_alts = term.pred.eval_columns(cols.alternatives());
        // A term with several attributes in one class carries the implicit
        // selection that they are equal: they all bind the same join
        // variable, so a row where they differ can never join.
        for &(ci, rep) in &term.class_attrs {
            for &(ti, attr) in &classes[ci].members {
                if ti != term_idx || attr == rep {
                    continue;
                }
                live_certain.and_assign(&equal_columns(
                    cols.certain().col(rep),
                    cols.certain().col(attr),
                ));
                live_alts.and_assign(&equal_columns(
                    cols.alternatives().col(rep),
                    cols.alternatives().col(attr),
                ));
            }
        }
        let mut alt_block = vec![0u32; cols.alternatives().rows()];
        for b in 0..cols.block_count() {
            for r in cols.block_range(b) {
                alt_block[r] = b as u32;
            }
        }
        let keys = term
            .class_attrs
            .iter()
            .map(|&(ci, a)| (ci, cols.certain().col(a), cols.alternatives().col(a)))
            .collect();
        Self {
            name: term.name.clone(),
            relation: term.relation.clone(),
            db: term.db,
            live_certain,
            live_alts,
            alt_block,
            keys,
        }
    }

    /// Blocks with no live alternative (prunable).
    pub(crate) fn pruned_blocks(&self) -> usize {
        let cols = self.db.columns();
        (0..cols.block_count())
            .filter(|&b| !self.live_alts.any_in(cols.block_range(b)))
            .count()
    }

    /// The key columns of `class`, if this term participates in it.
    pub(crate) fn class_key(&self, class: usize) -> Option<(&'a [u16], &'a [u16])> {
        self.keys
            .iter()
            .find(|&&(ci, _, _)| ci == class)
            .map(|&(_, c, a)| (c, a))
    }
}

/// One bit per row: are the two columns equal there?
fn equal_columns(a: &[u16], b: &[u16]) -> Bitmap {
    debug_assert_eq!(a.len(), b.len());
    let mut bm = Bitmap::zeros(a.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x == y {
            bm.set(i);
        }
    }
    bm
}

/// The classifier's verdict for the boolean (probability) statistic.
pub(crate) struct Classification {
    pub class: PlanClass,
    pub decomposition: SafePlan,
}

/// The shape criterion: subgoal sets of every two classes nested or
/// disjoint. Returns the violating pair's labels, if any. `extra` extends
/// each class's term set with dissociated members (empty for the plain
/// classifier).
pub(crate) fn shape_violation(
    resolved: &Resolved,
    extra: &[(usize, usize)],
) -> Option<(String, String)> {
    let sgs: Vec<Vec<usize>> = resolved
        .classes
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            let mut t = c.terms();
            t.extend(extra.iter().filter(|&&(ec, _)| ec == ci).map(|&(_, et)| et));
            t.sort_unstable();
            t.dedup();
            t
        })
        .collect();
    for i in 0..sgs.len() {
        for j in i + 1..sgs.len() {
            let inter = sgs[i].iter().filter(|t| sgs[j].contains(t)).count();
            let nested = inter == sgs[i].len() || inter == sgs[j].len();
            if inter > 0 && !nested {
                return Some((
                    resolved.classes[i].label.clone(),
                    resolved.classes[j].label.clone(),
                ));
            }
        }
    }
    None
}

/// The key criterion: within every block, live alternatives agree on each
/// join key the term participates in. Returns a human-readable reason for
/// the first straddling block, if any. Restrictions at deeper recursion
/// levels only shrink the live sets, so this top-level check covers all
/// levels — of the safe plan *and* of the dissociation recursion, which
/// additionally relies on it to reduce each block to a single Bernoulli
/// event shared by every branch the block is copied into.
pub(crate) fn key_straddle(resolved: &Resolved, compiled: &[CompiledTerm]) -> Option<String> {
    for (ti, ct) in compiled.iter().enumerate() {
        let cols = ct.db.columns();
        for &(ci, _, alt_key) in &ct.keys {
            for b in 0..cols.block_count() {
                let mut seen: Option<u16> = None;
                for r in cols.block_range(b) {
                    if !ct.live_alts.get(r) {
                        continue;
                    }
                    match seen {
                        None => seen = Some(alt_key[r]),
                        Some(v) if v != alt_key[r] => {
                            return Some(format!(
                                "key-correlated: block {} of `{}` straddles values of [{}]",
                                ct.db.blocks()[b].key(),
                                resolved.terms[ti].name,
                                resolved.classes[ci].label
                            ));
                        }
                        Some(_) => {}
                    }
                }
            }
        }
    }
    None
}

/// Groups of term indices scanning the same catalog relation more than
/// once (self-join alias groups), in first-scan order.
pub(crate) fn alias_groups(resolved: &Resolved) -> Vec<Vec<usize>> {
    let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
    for (i, t) in resolved.terms.iter().enumerate() {
        match groups.iter_mut().find(|(r, _)| *r == t.relation) {
            Some((_, g)) => g.push(i),
            None => groups.push((&t.relation, vec![i])),
        }
    }
    groups
        .into_iter()
        .filter(|(_, g)| g.len() > 1)
        .map(|(_, g)| g)
        .collect()
}

/// Do aliased scans of one relation see the same live alternatives in
/// every block? The dissociation bounds reduce each block to one shared
/// Bernoulli event; aliases with *different* live sets would make copies
/// of different, mutually correlated events, which neither bound
/// direction survives. Returns a reason naming the first offending group.
pub(crate) fn alias_live_mismatch(
    resolved: &Resolved,
    compiled: &[CompiledTerm],
) -> Option<String> {
    for group in alias_groups(resolved) {
        let first = &compiled[group[0]];
        for &t in &group[1..] {
            if compiled[t].live_alts != first.live_alts
                || compiled[t].live_certain != first.live_certain
            {
                return Some(format!(
                    "alias-correlated: scans `{}` and `{}` of `{}` select different \
                     live rows, so their shared blocks cannot dissociate",
                    resolved.terms[group[0]].name,
                    resolved.terms[t].name,
                    resolved.terms[t].relation,
                ));
            }
        }
    }
    None
}

/// Classifies a resolved, compiled multi-relation query for extensional
/// evaluation of the boolean statistic.
pub(crate) fn classify(resolved: &Resolved, compiled: &[CompiledTerm]) -> Classification {
    debug_assert!(resolved.terms.len() > 1);
    // 1. Shape: subgoal sets of every two classes nested or disjoint.
    if let Some((a, b)) = shape_violation(resolved, &[]) {
        let reason = format!("non-hierarchical: classes [{a}] and [{b}] overlap without nesting");
        return Classification {
            class: PlanClass::NonHierarchical,
            decomposition: SafePlan::Unsafe { reason },
        };
    }
    // 2. Keys: within every block, live alternatives agree on each join
    // key.
    if let Some(reason) = key_straddle(resolved, compiled) {
        return Classification {
            class: PlanClass::KeyCorrelated,
            decomposition: SafePlan::Unsafe { reason },
        };
    }
    let all: Vec<usize> = (0..resolved.terms.len()).collect();
    let active: Vec<usize> = (0..resolved.classes.len()).collect();
    // 3. Aliases: scanning one relation twice shares its block choices
    // across the scans, so the independent-product safe plan is a
    // *dissociation* of the query, not its exact value.
    if !alias_groups(resolved).is_empty() {
        return Classification {
            class: PlanClass::Dissociable,
            decomposition: decompose(resolved, &all, &active),
        };
    }
    Classification {
        class: PlanClass::Liftable,
        decomposition: decompose(resolved, &all, &active),
    }
}

/// Builds the safe-plan decomposition of a hierarchical component.
fn decompose(resolved: &Resolved, comp: &[usize], active: &[usize]) -> SafePlan {
    if comp.len() == 1 {
        return SafePlan::Scan {
            relation: resolved.terms[comp[0]].name.clone(),
        };
    }
    // The root class covers every term of a connected hierarchical
    // component (laminar family with a unique maximal element).
    let Some(&root) = active.iter().find(|&&c| {
        let terms = resolved.classes[c].terms();
        comp.iter().all(|t| terms.contains(t))
    }) else {
        return SafePlan::Unsafe {
            reason: "disconnected join components".into(),
        };
    };
    let remaining: Vec<usize> = active.iter().copied().filter(|&c| c != root).collect();
    let class_terms: Vec<Vec<usize>> = resolved.classes.iter().map(Class::terms).collect();
    let inputs = components(&class_terms, comp, &remaining)
        .into_iter()
        .map(|sub| decompose(resolved, &sub, &remaining))
        .collect();
    SafePlan::KeyPartition {
        key: resolved.classes[root].label.clone(),
        inputs,
    }
}

/// Connected components of `comp` under the `active` classes, in
/// first-term order. `class_terms` holds each class's term set — the
/// resolved memberships for the safe plan, or the dissociation-extended
/// ones for the bounds recursion.
pub(crate) fn components(
    class_terms: &[Vec<usize>],
    comp: &[usize],
    active: &[usize],
) -> Vec<Vec<usize>> {
    let mut comps: Vec<Vec<usize>> = comp.iter().map(|&t| vec![t]).collect();
    for &c in active {
        let linked: Vec<usize> = (0..comps.len())
            .filter(|&i| comps[i].iter().any(|t| class_terms[c].contains(t)))
            .collect();
        if linked.len() > 1 {
            let mut merged = Vec::new();
            for &i in linked.iter().rev() {
                let mut part = comps.remove(i);
                merged.append(&mut part);
            }
            merged.sort_unstable();
            comps.push(merged);
        }
    }
    comps.sort_by_key(|c| c[0]);
    comps
}
