//! Reverse-mode differentiation of the safe plan.
//!
//! A liftable boolean plan is a pure product/complement tree over the
//! block-alternative masses: the recursion of
//! [`exact::boolean_probability`](super::exact) multiplies component
//! probabilities, each key partition computes `1 - Π_v (1 - p_v)` over
//! its candidate key values, each branch multiplies its subcomponents,
//! and each leaf computes `1 - Π_b (1 - mass_b)` over its live blocks.
//! That makes `P(Q)` differentiable in every alternative mass `m_{b,a}`
//! — the quantity "Learning Tuple Probabilities" (Dylla & Theobald)
//! gradient-descends on to fit labeled query answers.
//!
//! The forward pass mirrors the interpreter recursion but records a
//! *tape*: one node per leaf, branch product, and key-partition
//! complement, in evaluation order, each holding its children and its
//! value. Crucially it does **not** copy the interpreter's early-exit
//! breaks (`p_v == 0` / `none == 0`): those skip multiplications whose
//! *values* are absorbed by zero but whose *adjoints* are not — a branch
//! with probability 0 still has nonzero `∂P/∂m` through its own masses.
//! Zero-products are exact in floating point (`0.0 * x == 0.0`), so the
//! forward value still matches the interpreter bit for bit.
//!
//! The backward sweep walks the tape in reverse, distributing each
//! node's adjoint to its children with prefix/suffix products (never
//! dividing, so zero factors are handled exactly):
//!
//! * product node `v = Π_i c_i`: `∂v/∂c_i = Π_{j≠i} c_j`;
//! * complement node `v = 1 - Π_i (1 - c_i)`: `∂v/∂c_i = Π_{j≠i} (1 - c_j)`;
//! * leaf `v = 1 - Π_b (1 - min(mass_b, 1))`: `∂v/∂mass_b =
//!   Π_{b'≠b} (1 - mass_{b'})` while `mass_b < 1` (zero past the clamp),
//!   and `∂mass_b/∂m_{b,a} = 1` for every live alternative row.
//!
//! Leaves decided by a live certain row have value 1 and zero gradient.

use super::classify::{components, Class, CompiledTerm, Resolved};
use super::exact::Rows;
use mrsl_util::FxHashMap;

/// `d P(Q) / d m` for every alternative mass of every scanned relation —
/// the output of [`CatalogEngine::probability_with_gradient`](super::CatalogEngine::probability_with_gradient).
#[derive(Debug, Clone)]
pub struct MassGradients {
    /// One entry per scanned relation, in scan order: the relation name
    /// and one partial derivative per alternative row, aligned with
    /// [`ColumnStore::alt_probs`](crate::column::ColumnStore::alt_probs)
    /// (flattened block order).
    pub relations: Vec<(String, Vec<f64>)>,
}

impl MassGradients {
    /// The gradient vector of `relation`, if the query scans it.
    pub fn for_relation(&self, relation: &str) -> Option<&[f64]> {
        self.relations
            .iter()
            .find(|(name, _)| name == relation)
            .map(|(_, g)| g.as_slice())
    }
}

/// One recorded block of a leaf node: its (clamped-input) mass and the
/// live alternative rows the mass sums over.
struct LeafBlock {
    mass: f64,
    rows: Vec<u32>,
}

enum TapeNode {
    /// A leaf decided by a live certain row: value 1, zero gradient.
    One,
    /// A single-relation leaf: `1 - Π_b (1 - min(mass_b, 1))`.
    Leaf { term: usize, blocks: Vec<LeafBlock> },
    /// `Π_i value(child_i)` — the top-level component product and every
    /// key-value branch.
    Product { children: Vec<usize> },
    /// `1 - Π_i (1 - value(child_i))` — a key partition over its
    /// candidate-value branches.
    Complement { children: Vec<usize> },
}

#[derive(Default)]
struct Tape {
    nodes: Vec<TapeNode>,
    values: Vec<f64>,
}

impl Tape {
    /// Appends a node, computing its value from its children's.
    fn push(&mut self, node: TapeNode) -> usize {
        let value = match &node {
            TapeNode::One => 1.0,
            TapeNode::Leaf { blocks, .. } => {
                let mut none = 1.0;
                for b in blocks {
                    none *= (1.0 - b.mass.min(1.0)).max(0.0);
                }
                1.0 - none
            }
            TapeNode::Product { children } => children.iter().map(|&c| self.values[c]).product(),
            TapeNode::Complement { children } => {
                let mut none = 1.0;
                for &c in children {
                    none *= 1.0 - self.values[c];
                }
                1.0 - none
            }
        };
        self.nodes.push(node);
        self.values.push(value);
        self.nodes.len() - 1
    }
}

/// Distributes `adjoint` over `factors`: `out[i] = adjoint * Π_{j≠i}
/// factors[j]`, by prefix/suffix products (no division, so zero factors
/// stay exact).
fn distribute(adjoint: f64, factors: &[f64]) -> Vec<f64> {
    let n = factors.len();
    let mut out = vec![0.0; n];
    let mut pre = 1.0;
    for i in 0..n {
        out[i] = adjoint * pre;
        pre *= factors[i];
    }
    let mut suf = 1.0;
    for i in (0..n).rev() {
        out[i] *= suf;
        suf *= factors[i];
    }
    out
}

/// `P(Q)` and `∂P/∂m` per term, for a classified-liftable query. The
/// probability matches [`super::exact::boolean_probability`] bit for bit;
/// the per-term vectors are aligned with each relation's flattened
/// alternative rows.
pub(crate) fn boolean_gradient(
    resolved: &Resolved,
    compiled: &[CompiledTerm],
) -> (f64, Vec<Vec<f64>>) {
    let all: Vec<usize> = (0..compiled.len()).collect();
    let active: Vec<usize> = (0..resolved.classes.len()).collect();
    let class_terms: Vec<Vec<usize>> = resolved.classes.iter().map(Class::terms).collect();
    let live = Rows::live(compiled);
    let rows: Vec<&Rows> = live.iter().collect();

    let mut tape = Tape::default();
    let children: Vec<usize> = components(&class_terms, &all, &active)
        .iter()
        .map(|comp| build_component(resolved, compiled, comp, &active, &rows, &mut tape))
        .collect();
    let root = tape.push(TapeNode::Product { children });
    let p = tape.values[root];

    // Backward sweep: children always precede parents on the tape, so a
    // reverse walk sees every node's full adjoint before distributing it.
    let mut grads: Vec<Vec<f64>> = compiled
        .iter()
        .map(|ct| vec![0.0; ct.db.columns().alt_probs().len()])
        .collect();
    let mut adj = vec![0.0; tape.nodes.len()];
    adj[root] = 1.0;
    for i in (0..tape.nodes.len()).rev() {
        let a = adj[i];
        if a == 0.0 {
            continue;
        }
        match &tape.nodes[i] {
            TapeNode::One => {}
            TapeNode::Leaf { term, blocks } => {
                let factors: Vec<f64> = blocks
                    .iter()
                    .map(|b| (1.0 - b.mass.min(1.0)).max(0.0))
                    .collect();
                // value = 1 - Π (1 - t_b): ∂value/∂t_b = Π_{b'≠b} (1 - t_{b'}).
                for (b, d) in blocks.iter().zip(distribute(a, &factors)) {
                    if b.mass < 1.0 {
                        for &r in &b.rows {
                            grads[*term][r as usize] += d;
                        }
                    }
                }
            }
            TapeNode::Product { children } => {
                let factors: Vec<f64> = children.iter().map(|&c| tape.values[c]).collect();
                for (&c, d) in children.iter().zip(distribute(a, &factors)) {
                    adj[c] += d;
                }
            }
            TapeNode::Complement { children } => {
                let factors: Vec<f64> = children.iter().map(|&c| 1.0 - tape.values[c]).collect();
                for (&c, d) in children.iter().zip(distribute(a, &factors)) {
                    adj[c] += d;
                }
            }
        }
    }
    (p, grads)
}

/// The tape-building mirror of the interpreter's `component_probability`:
/// identical partitioning and candidate-value order, no early exits.
fn build_component(
    resolved: &Resolved,
    compiled: &[CompiledTerm],
    comp: &[usize],
    active: &[usize],
    rows: &[&Rows],
    tape: &mut Tape,
) -> usize {
    if comp.len() == 1 {
        return build_leaf(&compiled[comp[0]], comp[0], rows[comp[0]], tape);
    }
    let root = *active
        .iter()
        .find(|&&c| {
            let terms = resolved.classes[c].terms();
            comp.iter().all(|t| terms.contains(t))
        })
        .expect("hierarchical connected component has a covering class");

    let mut parts: Vec<FxHashMap<u16, Rows>> = Vec::with_capacity(comp.len());
    for &t in comp {
        let (ckey, akey) = compiled[t].class_key(root).expect("root covers the term");
        let mut map: FxHashMap<u16, Rows> = FxHashMap::default();
        for &r in &rows[t].certain {
            map.entry(ckey[r as usize]).or_default().certain.push(r);
        }
        for &r in &rows[t].alts {
            map.entry(akey[r as usize]).or_default().alts.push(r);
        }
        parts.push(map);
    }

    let probe = parts
        .iter()
        .enumerate()
        .min_by_key(|(_, m)| m.len())
        .map(|(i, _)| i)
        .expect("component is non-empty");
    let mut values: Vec<u16> = parts[probe].keys().copied().collect();
    values.sort_unstable();
    values.retain(|v| parts.iter().all(|m| m.contains_key(v)));

    let remaining: Vec<usize> = active.iter().copied().filter(|&c| c != root).collect();
    let class_terms: Vec<Vec<usize>> = resolved.classes.iter().map(Class::terms).collect();
    let subcomps = components(&class_terms, comp, &remaining);
    let mut branch_rows: Vec<&Rows> = rows.to_vec();
    let mut branches = Vec::with_capacity(values.len());
    for v in values {
        for (pi, &t) in comp.iter().enumerate() {
            branch_rows[t] = parts[pi].get(&v).expect("value present everywhere");
        }
        let children: Vec<usize> = subcomps
            .iter()
            .map(|sub| build_component(resolved, compiled, sub, &remaining, &branch_rows, tape))
            .collect();
        branches.push(tape.push(TapeNode::Product { children }));
    }
    tape.push(TapeNode::Complement { children: branches })
}

/// The tape-building mirror of the interpreter's leaf: per consecutive
/// block run, sum the live masses and record the contributing rows.
fn build_leaf(ct: &CompiledTerm, term: usize, rows: &Rows, tape: &mut Tape) -> usize {
    if !rows.certain.is_empty() {
        return tape.push(TapeNode::One);
    }
    let probs = ct.db.columns().alt_probs();
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < rows.alts.len() {
        let block = ct.alt_block[rows.alts[i] as usize];
        let start = i;
        let mut mass = 0.0;
        while i < rows.alts.len() && ct.alt_block[rows.alts[i] as usize] == block {
            mass += probs[rows.alts[i] as usize];
            i += 1;
        }
        blocks.push(LeafBlock {
            mass,
            rows: rows.alts[start..i].to_vec(),
        });
    }
    tape.push(TapeNode::Leaf { term, blocks })
}

#[cfg(test)]
// Finite-difference loops index rows on purpose: `row` names the perturbed
// coordinate in both the probe and the failure message.
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::super::classify::{classify, resolve, CompiledTerm};
    use super::super::exact::boolean_probability;
    use super::super::PlanClass;
    use super::*;
    use crate::algebra::Query;
    use crate::block::{Alternative, Block};
    use crate::catalog::Catalog;
    use crate::database::ProbDb;
    use crate::predicate::Predicate;
    use mrsl_relation::{AttrId, CompleteTuple, Schema, ValueId};

    fn alt(values: Vec<u16>, prob: f64) -> Alternative {
        Alternative {
            tuple: CompleteTuple::from_values(values),
            prob,
        }
    }

    /// sensors(station, kind) ⋈ readings(station, level) with selections,
    /// blocks arranged so no leaf mass is clamped.
    fn catalog() -> Catalog {
        let station = |extra: &str| {
            Schema::builder()
                .attribute("station", ["s0", "s1", "s2"])
                .attribute(extra, ["neg", "pos"])
                .build()
                .unwrap()
        };
        let mut sensors = ProbDb::new(station("kind"));
        sensors
            .push_block(Block::new(0, vec![alt(vec![0, 0], 0.4), alt(vec![0, 1], 0.6)]).unwrap())
            .unwrap();
        sensors
            .push_block(Block::new(1, vec![alt(vec![1, 0], 0.5), alt(vec![1, 1], 0.5)]).unwrap())
            .unwrap();
        let mut readings = ProbDb::new(station("level"));
        readings
            .push_block(Block::new(0, vec![alt(vec![0, 0], 0.7), alt(vec![0, 1], 0.3)]).unwrap())
            .unwrap();
        readings
            .push_block(Block::new(1, vec![alt(vec![1, 0], 0.2), alt(vec![1, 1], 0.8)]).unwrap())
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.add("sensors", sensors).unwrap();
        catalog.add("readings", readings).unwrap();
        catalog
    }

    fn join_query() -> Query {
        Query::scan("sensors")
            .filter(Predicate::eq(AttrId(1), ValueId(1)))
            .join_on(
                Query::scan("readings").filter(Predicate::eq(AttrId(1), ValueId(1))),
                [(AttrId(0), AttrId(0))],
            )
    }

    fn gradient_of(catalog: &Catalog, q: &Query) -> (f64, Vec<Vec<f64>>) {
        let flat = q.flatten().unwrap();
        let resolved = resolve(&flat, |name| catalog.get(name)).unwrap();
        let compiled: Vec<CompiledTerm> = resolved
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| CompiledTerm::compile(i, t, &resolved.classes))
            .collect();
        if resolved.terms.len() > 1 {
            assert_eq!(classify(&resolved, &compiled).class, PlanClass::Liftable);
        }
        boolean_gradient(&resolved, &compiled)
    }

    fn forward_probability(catalog: &Catalog, q: &Query) -> f64 {
        let flat = q.flatten().unwrap();
        let resolved = resolve(&flat, |name| catalog.get(name)).unwrap();
        let compiled: Vec<CompiledTerm> = resolved
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| CompiledTerm::compile(i, t, &resolved.classes))
            .collect();
        boolean_probability(&resolved, &compiled)
    }

    /// Central difference of `P(Q)` in one alternative row's mass.
    fn central_diff(catalog: &Catalog, q: &Query, relation: &str, row: usize, h: f64) -> f64 {
        let perturbed = |delta: f64| {
            let mut cat = catalog.clone();
            let db = cat.get_mut(relation).unwrap();
            // Reach past Block validation: perturb through the column
            // mirror only, which is all the evaluator reads.
            let mut probs = db.columns().alt_probs().to_vec();
            probs[row] += delta;
            let b = (0..db.columns().block_count())
                .find(|&b| db.columns().block_range(b).contains(&row))
                .unwrap();
            let range = db.columns().block_range(b);
            // Renormalization is NOT applied: the gradient is with respect
            // to the unconstrained mass, matching the analytic pass.
            let block_probs = probs[range].to_vec();
            db.set_block_masses_unchecked(b, &block_probs);
            forward_probability(&cat, q)
        };
        (perturbed(h) - perturbed(-h)) / (2.0 * h)
    }

    #[test]
    fn forward_value_matches_interpreter_bitwise() {
        let catalog = catalog();
        let q = join_query();
        let (p, _) = gradient_of(&catalog, &q);
        assert_eq!(p.to_bits(), forward_probability(&catalog, &q).to_bits());
    }

    #[test]
    fn join_gradient_matches_central_differences() {
        let catalog = catalog();
        let q = join_query();
        let (_, grads) = gradient_of(&catalog, &q);
        for (t, relation) in ["sensors", "readings"].iter().enumerate() {
            for row in 0..grads[t].len() {
                let fd = central_diff(&catalog, &q, relation, row, 1e-6);
                assert!(
                    (grads[t][row] - fd).abs() < 1e-6,
                    "{relation} row {row}: analytic {} vs fd {fd}",
                    grads[t][row]
                );
            }
        }
    }

    #[test]
    fn single_relation_gradient_matches_central_differences() {
        let catalog = catalog();
        let q = Query::scan("sensors").filter(Predicate::eq(AttrId(1), ValueId(1)));
        let (p, grads) = gradient_of(&catalog, &q);
        // P = 1 - (1 - 0.6)(1 - 0.5); d/dm for the two live rows.
        assert!((p - 0.8).abs() < 1e-12);
        for row in 0..grads[0].len() {
            let fd = central_diff(&catalog, &q, "sensors", row, 1e-6);
            assert!(
                (grads[0][row] - fd).abs() < 1e-6,
                "row {row}: analytic {} vs fd {fd}",
                grads[0][row]
            );
        }
        // Pruned rows (kind = neg) have zero gradient.
        assert_eq!(grads[0][0], 0.0);
        assert_eq!(grads[0][2], 0.0);
    }

    #[test]
    fn certain_leaf_and_clamped_mass_have_zero_gradient() {
        let mut catalog = catalog();
        // Add a certain pos sensor at s0: the sensors leaf of branch s0 is
        // decided, so its block masses stop mattering there.
        catalog
            .get_mut("sensors")
            .unwrap()
            .push_certain(CompleteTuple::from_values(vec![0, 1]))
            .unwrap();
        let q = Query::scan("sensors").filter(Predicate::eq(AttrId(1), ValueId(1)));
        let (p, grads) = gradient_of(&catalog, &q);
        assert_eq!(p, 1.0);
        assert!(grads[0].iter().all(|&g| g == 0.0));
    }

    #[test]
    fn zero_probability_branch_still_has_gradient() {
        // An unselective predicate leaves whole blocks live with mass 1 —
        // but a *selection* that kills every alternative of one relation's
        // s1 block makes branch s1 contribute p_v = 0. The interpreter
        // breaks out early; the gradient must still flow to the other
        // relation's s1 rows. Build that shape explicitly.
        let station = |extra: &str| {
            Schema::builder()
                .attribute("station", ["s0", "s1"])
                .attribute(extra, ["neg", "pos", "odd"])
                .build()
                .unwrap()
        };
        let mut left = ProbDb::new(station("kind"));
        left.push_block(Block::new(0, vec![alt(vec![0, 0], 0.4), alt(vec![0, 1], 0.6)]).unwrap())
            .unwrap();
        // s1 alternatives are all kind=odd: the kind=pos selection prunes
        // the whole block, so branch s1 dies on the left.
        left.push_block(Block::new(1, vec![alt(vec![1, 2], 0.5), alt(vec![1, 0], 0.5)]).unwrap())
            .unwrap();
        let mut right = ProbDb::new(station("level"));
        right
            .push_block(Block::new(0, vec![alt(vec![0, 0], 0.7), alt(vec![0, 1], 0.3)]).unwrap())
            .unwrap();
        right
            .push_block(Block::new(1, vec![alt(vec![1, 1], 0.8), alt(vec![1, 0], 0.2)]).unwrap())
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.add("left", left).unwrap();
        catalog.add("right", right).unwrap();
        let q = Query::scan("left")
            .filter(Predicate::eq(AttrId(1), ValueId(1)))
            .join_on(
                Query::scan("right").filter(Predicate::eq(AttrId(1), ValueId(1))),
                [(AttrId(0), AttrId(0))],
            );
        let (p, grads) = gradient_of(&catalog, &q);
        assert_eq!(p.to_bits(), forward_probability(&catalog, &q).to_bits());
        for (t, relation) in ["left", "right"].iter().enumerate() {
            for row in 0..grads[t].len() {
                let fd = central_diff(&catalog, &q, relation, row, 1e-6);
                assert!(
                    (grads[t][row] - fd).abs() < 1e-6,
                    "{relation} row {row}: analytic {} vs fd {fd}",
                    grads[t][row]
                );
            }
        }
    }

    #[test]
    fn public_entry_point_gates_on_liftability() {
        use super::super::CatalogEngine;

        let catalog = catalog();
        let engine = CatalogEngine::new(&catalog);
        let q = join_query();
        let (p, grads) = engine.probability_with_gradient(&q).unwrap();
        let (expect_p, report) = engine.probability(&q).unwrap();
        assert_eq!(report.plan, PlanClass::Liftable);
        assert_eq!(p.to_bits(), expect_p.to_bits());
        assert_eq!(grads.relations.len(), 2);
        assert_eq!(grads.relations[0].0, "sensors");
        assert!(grads.for_relation("readings").is_some());
        assert!(grads.for_relation("nope").is_none());

        // A key-straddling catalog is not differentiable.
        let mut straddling = ProbDb::new(
            Schema::builder()
                .attribute("station", ["s0", "s1", "s2"])
                .attribute("kind", ["neg", "pos"])
                .build()
                .unwrap(),
        );
        straddling
            .push_block(Block::new(0, vec![alt(vec![0, 1], 0.5), alt(vec![1, 1], 0.5)]).unwrap())
            .unwrap();
        let mut bad = Catalog::new();
        bad.add("sensors", straddling).unwrap();
        bad.add(
            "readings",
            catalog.get_shared("readings").unwrap().as_ref().clone(),
        )
        .unwrap();
        let engine = CatalogEngine::new(&bad);
        let e = engine
            .probability_with_gradient(
                &Query::scan("sensors").join_on("readings", [(AttrId(0), AttrId(0))]),
            )
            .unwrap_err();
        assert!(matches!(e, crate::ProbDbError::NotDifferentiable { .. }));
    }

    /// A random hierarchical two-relation catalog: every block gets an
    /// "odd"-valued slack alternative the selection prunes, so no live
    /// leaf mass reaches the clamp and central differences are clean.
    fn random_catalog(seed: u64, blocks_per_rel: usize) -> Catalog {
        use mrsl_util::derive_seed;
        let station_labels = ["s0", "s1", "s2", "s3"];
        let schema = |extra: &str| {
            Schema::builder()
                .attribute("station", station_labels)
                .attribute(extra, ["neg", "pos", "odd"])
                .build()
                .unwrap()
        };
        let mut catalog = Catalog::new();
        for (r, name) in ["sensors", "readings"].into_iter().enumerate() {
            let mut db = ProbDb::new(schema(if r == 0 { "kind" } else { "level" }));
            for b in 0..blocks_per_rel {
                // Cheap deterministic pseudo-randomness from the seed.
                let mut x = derive_seed(seed, &[r as u64, b as u64]);
                let mut next = move || {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (x >> 33) as f64 / (1u64 << 31) as f64
                };
                let station = (next() * station_labels.len() as f64) as u16;
                let w = [next() + 0.05, next() + 0.05, next() + 0.05];
                let total: f64 = w.iter().sum();
                db.push_block(
                    Block::new(
                        b,
                        vec![
                            alt(vec![station, 0], w[0] / total),
                            alt(vec![station, 1], w[1] / total),
                            alt(vec![station, 2], w[2] / total),
                        ],
                    )
                    .unwrap(),
                )
                .unwrap();
            }
            catalog.add(name, db).unwrap();
        }
        catalog
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        /// The ISSUE's acceptance bar: |analytic − central-diff| < 1e-6 on
        /// random hierarchical catalogs, every alternative row.
        #[test]
        fn gradient_matches_finite_differences_on_random_catalogs(
            seed in 0u64..1_000,
            blocks in 1usize..5,
        ) {
            let catalog = random_catalog(seed, blocks);
            let q = join_query();
            let (p, grads) = gradient_of(&catalog, &q);
            proptest::prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
            for (t, relation) in ["sensors", "readings"].iter().enumerate() {
                for row in 0..grads[t].len() {
                    let fd = central_diff(&catalog, &q, relation, row, 1e-6);
                    proptest::prop_assert!(
                        (grads[t][row] - fd).abs() < 1e-6,
                        "{} row {}: analytic {} vs fd {}",
                        relation, row, grads[t][row], fd
                    );
                }
            }
        }
    }
}
