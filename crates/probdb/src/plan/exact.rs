//! Exact extensional evaluation of safe (hierarchical) query plans.
//!
//! Three evaluators, all running on the columnar stores through the
//! compiled live-row bitmaps:
//!
//! * [`boolean_probability`] — `P(result non-empty)` by the safe-plan
//!   recursion: partition every relation of a connected component by the
//!   shared join key, treat key values as independent (sound because the
//!   classifier verified no block straddles keys — each block's mass lands
//!   in exactly one partition), recurse into the subcomponents the removed
//!   key leaves behind, and bottom out at single relations where
//!   `P(∃ match) = 1 - ∏_blocks (1 - p_block)`.
//! * [`expected_join_count`] — `E[|result|]` by linearity of expectation:
//!   every combination of one row per relation that satisfies the join
//!   contributes the product of its row probabilities (rows of different
//!   relations are always independent). This needs no hierarchy or key
//!   uniqueness, so it is exact for *every* join shape.
//! * [`value_marginal`] — the selection-weighted histogram of one
//!   attribute over a single relation.

use super::classify::{components, Class, CompiledTerm, Resolved};
use mrsl_relation::AttrId;
use mrsl_util::FxHashMap;

/// Live rows of one term inside the recursion: indices into the certain
/// and alternative column sets.
#[derive(Debug, Clone, Default)]
pub(crate) struct Rows {
    pub(crate) certain: Vec<u32>,
    pub(crate) alts: Vec<u32>,
}

impl Rows {
    /// The initial live rows of every compiled term.
    pub(crate) fn live(compiled: &[CompiledTerm]) -> Vec<Rows> {
        compiled
            .iter()
            .map(|ct| Rows {
                certain: ct.live_certain.iter_ones().map(|i| i as u32).collect(),
                alts: ct.live_alts.iter_ones().map(|i| i as u32).collect(),
            })
            .collect()
    }
}

/// `P(query result is non-empty)` of a classified-safe query.
pub(crate) fn boolean_probability(resolved: &Resolved, compiled: &[CompiledTerm]) -> f64 {
    let all: Vec<usize> = (0..compiled.len()).collect();
    let active: Vec<usize> = (0..resolved.classes.len()).collect();
    let class_terms: Vec<Vec<usize>> = resolved.classes.iter().map(Class::terms).collect();
    let live = Rows::live(compiled);
    let rows: Vec<&Rows> = live.iter().collect();
    let mut p = 1.0;
    for comp in components(&class_terms, &all, &active) {
        p *= component_probability(resolved, compiled, &comp, &active, &rows);
    }
    p
}

fn component_probability(
    resolved: &Resolved,
    compiled: &[CompiledTerm],
    comp: &[usize],
    active: &[usize],
    rows: &[&Rows],
) -> f64 {
    if comp.len() == 1 {
        return leaf_probability(&compiled[comp[0]], rows[comp[0]]);
    }
    // Root class: covers every term of a connected hierarchical component
    // (guaranteed by classification).
    let root = *active
        .iter()
        .find(|&&c| {
            let terms = resolved.classes[c].terms();
            comp.iter().all(|t| terms.contains(t))
        })
        .expect("hierarchical connected component has a covering class");

    // Partition each term's live rows by the root-class key value.
    let mut parts: Vec<FxHashMap<u16, Rows>> = Vec::with_capacity(comp.len());
    for &t in comp {
        let (ckey, akey) = compiled[t].class_key(root).expect("root covers the term");
        let mut map: FxHashMap<u16, Rows> = FxHashMap::default();
        for &r in &rows[t].certain {
            map.entry(ckey[r as usize]).or_default().certain.push(r);
        }
        for &r in &rows[t].alts {
            map.entry(akey[r as usize]).or_default().alts.push(r);
        }
        parts.push(map);
    }

    // Candidate key values: present in every term of the component (a
    // value missing anywhere zeroes that branch). Iterate the smallest map
    // in sorted order for determinism.
    let probe = parts
        .iter()
        .enumerate()
        .min_by_key(|(_, m)| m.len())
        .map(|(i, _)| i)
        .expect("component is non-empty");
    let mut values: Vec<u16> = parts[probe].keys().copied().collect();
    values.sort_unstable();
    values.retain(|v| parts.iter().all(|m| m.contains_key(v)));

    let remaining: Vec<usize> = active.iter().copied().filter(|&c| c != root).collect();
    let class_terms: Vec<Vec<usize>> = resolved.classes.iter().map(Class::terms).collect();
    let subcomps = components(&class_terms, comp, &remaining);
    let mut none = 1.0; // P(no key value produces a result)
                        // One scratch view per recursion level, retargeted per key value —
                        // no per-branch `Rows` clones. Entries outside `comp` are never read
                        // by the subcomponent recursion.
    let mut branch_rows: Vec<&Rows> = rows.to_vec();
    for v in values {
        // Rows of this branch: the v-partitions. Branches over different
        // values touch disjoint blocks (no block straddles keys), so they
        // are independent.
        for (pi, &t) in comp.iter().enumerate() {
            branch_rows[t] = parts[pi].get(&v).expect("value present everywhere");
        }
        let mut p_v = 1.0;
        for sub in &subcomps {
            p_v *= component_probability(resolved, compiled, sub, &remaining, &branch_rows);
            if p_v == 0.0 {
                break;
            }
        }
        none *= 1.0 - p_v;
        if none == 0.0 {
            break;
        }
    }
    1.0 - none
}

/// `P(∃ live row)` of one relation: certain rows decide it; otherwise the
/// per-block masses are independent Bernoulli trials.
fn leaf_probability(ct: &CompiledTerm, rows: &Rows) -> f64 {
    leaf_probability_with(ct, rows, |mass| mass)
}

/// [`leaf_probability`] with a parameterized per-block mass: dissociation
/// evaluates the same leaves with transformed Bernoulli masses (e.g.
/// `m^(1/k)` for the conjunctive upper bound of `k` aliased copies,
/// `1 - (1-m)^(1/d)` for the disjunctive lower bound of `d` replicated
/// copies), so both bounds share the exact path's arithmetic.
pub(crate) fn leaf_probability_with(
    ct: &CompiledTerm,
    rows: &Rows,
    transform: impl Fn(f64) -> f64,
) -> f64 {
    if !rows.certain.is_empty() {
        return 1.0;
    }
    let probs = ct.db.columns().alt_probs();
    let mut none = 1.0;
    let mut i = 0;
    while i < rows.alts.len() {
        let block = ct.alt_block[rows.alts[i] as usize];
        let mut mass = 0.0;
        while i < rows.alts.len() && ct.alt_block[rows.alts[i] as usize] == block {
            mass += probs[rows.alts[i] as usize];
            i += 1;
        }
        none *= (1.0 - transform(mass.min(1.0))).max(0.0);
    }
    1.0 - none
}

/// `E[|result|]` of any conjunctive query shape, by joining per-relation
/// expected-mass tables over the join-class assignments.
pub(crate) fn expected_join_count(resolved: &Resolved, compiled: &[CompiledTerm]) -> f64 {
    run_mass_join(&count_steps(resolved), compiled, resolved.classes.len())
}

/// One fold step of the expected-count mass join ([`run_mass_join`]):
/// which key positions of `term` probe classes already bound by earlier
/// steps, and which bind fresh classes for the steps after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct MassStep {
    /// Index into the compiled terms.
    pub(crate) term: usize,
    /// `(key position, class)` pairs bound by earlier steps — the probe.
    pub(crate) bound: Vec<(usize, usize)>,
    /// `(key position, class)` pairs this step binds.
    pub(crate) fresh: Vec<(usize, usize)>,
}

/// The fold schedule for [`run_mass_join`], derived purely from the
/// resolved shape (term order and per-term class keys) — it contains no
/// data, so the plan cache can store it.
pub(crate) fn count_steps(resolved: &Resolved) -> Vec<MassStep> {
    let mut bound_classes = vec![false; resolved.classes.len()];
    resolved
        .terms
        .iter()
        .enumerate()
        .map(|(t, term)| {
            let mut bound = Vec::new();
            let mut fresh = Vec::new();
            for (pos, &(ci, _)) in term.class_attrs.iter().enumerate() {
                if bound_classes[ci] {
                    bound.push((pos, ci));
                } else {
                    fresh.push((pos, ci));
                    bound_classes[ci] = true;
                }
            }
            MassStep {
                term: t,
                bound,
                fresh,
            }
        })
        .collect()
}

/// One step's grouped expected-mass table: `(key, mass)` sorted
/// lexicographically by key (see [`grouped_term_mass`]). Tables depend
/// only on the step shape and the term's live rows, so the plan cache
/// memoizes them next to the boolean registers.
pub(crate) type MassTable = Vec<(Vec<u16>, f64)>;

/// Builds every step's grouped mass table, fanning the per-step group
/// sorts out over the rayon pool when `parallel` (tables are
/// independent; the shim collects in step order, so the output is
/// identical either way).
pub(crate) fn mass_tables(
    steps: &[MassStep],
    compiled: &[CompiledTerm],
    parallel: bool,
) -> Vec<MassTable> {
    if parallel && steps.len() > 1 {
        use rayon::prelude::*;
        steps
            .par_iter()
            .map(|step| grouped_term_mass(&compiled[step.term], step))
            .collect()
    } else {
        steps
            .iter()
            .map(|step| grouped_term_mass(&compiled[step.term], step))
            .collect()
    }
}

/// Deterministic expected-count fold: each step joins the accumulated
/// class assignments against its term's grouped mass table, probing only
/// the keys compatible with the already-bound classes (binary search on
/// the bound-key prefix) instead of the old `assign × key` cross product.
/// Assignments and mass tables are kept sorted with equal keys merge-
/// summed, so the result is independent of hash iteration order; the
/// interpreter and the bytecode VM both call this kernel, which makes
/// their expected counts bit-identical by construction.
pub(crate) fn run_mass_join(steps: &[MassStep], compiled: &[CompiledTerm], classes: usize) -> f64 {
    run_mass_join_tables(steps, &mass_tables(steps, compiled, false), classes, 1)
}

/// [`run_mass_join`] over prebuilt (possibly memoized) mass tables, with
/// the probe loop sharded across the rayon pool. `shards` is the raw
/// configured count: `0` lets each step decide per its accumulator size
/// via [`super::vm::effective_shards`], so small probe loops stay
/// sequential in auto mode.
///
/// Sharding is bit-identical to the sequential fold: the accumulator is
/// split into contiguous chunks, each chunk probes the (shared,
/// read-only) table independently, and the chunk outputs are
/// concatenated in chunk order — exactly the sequential push sequence.
/// The stable sort and run merge that follow therefore see the identical
/// input, and every weight flows through the identical additions and
/// multiplications.
pub(crate) fn run_mass_join_tables(
    steps: &[MassStep],
    tables: &[MassTable],
    classes: usize,
    shards: usize,
) -> f64 {
    // Seed: the empty assignment (one per class, u16::MAX = unbound).
    let mut acc: Vec<(Vec<u16>, f64)> = vec![(vec![u16::MAX; classes], 1.0)];
    for (step, grouped) in steps.iter().zip(tables) {
        let rows = u32::try_from(acc.len()).unwrap_or(u32::MAX);
        let shards = super::vm::effective_shards(shards, rows);
        let mut next = if shards > 1 && acc.len() >= shards.max(2) {
            use rayon::prelude::*;
            let size = acc.len().div_ceil(shards);
            let parts: Vec<Vec<(Vec<u16>, f64)>> = acc
                .chunks(size)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|chunk| probe_step(step, grouped, chunk))
                .collect();
            parts.into_iter().flatten().collect()
        } else {
            probe_step(step, grouped, &acc)
        };
        if next.is_empty() {
            return 0.0;
        }
        next.sort_by(|a, b| a.0.cmp(&b.0));
        acc = merge_runs(next);
    }
    acc.iter().map(|&(_, w)| w).sum()
}

/// Probes one step's grouped table with a slice of accumulated
/// assignments, in order — the sequential fold's inner loop, factored
/// out so the sharded fold can run it per chunk.
fn probe_step(
    step: &MassStep,
    grouped: &MassTable,
    acc: &[(Vec<u16>, f64)],
) -> Vec<(Vec<u16>, f64)> {
    let nb = step.bound.len();
    let mut next: Vec<(Vec<u16>, f64)> = Vec::new();
    let mut probe = vec![0u16; nb];
    for (assign, w) in acc {
        for (i, &(_, ci)) in step.bound.iter().enumerate() {
            probe[i] = assign[ci];
        }
        let lo = grouped.partition_point(|(k, _)| k[..nb] < probe[..]);
        let hi = lo + grouped[lo..].partition_point(|(k, _)| k[..nb] == probe[..]);
        for (key, m) in &grouped[lo..hi] {
            let mut merged = assign.clone();
            for (i, &(_, ci)) in step.fresh.iter().enumerate() {
                merged[ci] = key[nb + i];
            }
            next.push((merged, w * m));
        }
    }
    next
}

/// Expected mass of one step's term keyed by `bound ++ fresh` positions
/// (certain rows weigh 1, alternatives their probability), sorted
/// lexicographically with equal keys merge-summed in row order — so the
/// probe side is a binary search on the bound prefix.
pub(crate) fn grouped_term_mass(ct: &CompiledTerm, step: &MassStep) -> Vec<(Vec<u16>, f64)> {
    let probs = ct.db.columns().alt_probs();
    let nk = step.bound.len() + step.fresh.len();
    let mut rows: Vec<(Vec<u16>, f64)> = Vec::new();
    for r in ct.live_certain.iter_ones() {
        let mut key = Vec::with_capacity(nk);
        for &(pos, _) in step.bound.iter().chain(&step.fresh) {
            key.push(ct.keys[pos].1[r]);
        }
        rows.push((key, 1.0));
    }
    for r in ct.live_alts.iter_ones() {
        let mut key = Vec::with_capacity(nk);
        for &(pos, _) in step.bound.iter().chain(&step.fresh) {
            key.push(ct.keys[pos].2[r]);
        }
        rows.push((key, probs[r]));
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    merge_runs(rows)
}

/// Sums runs of equal keys in an already-sorted `(key, weight)` list,
/// preserving first-occurrence order of the weights within each run.
fn merge_runs(mut rows: Vec<(Vec<u16>, f64)>) -> Vec<(Vec<u16>, f64)> {
    let mut out: Vec<(Vec<u16>, f64)> = Vec::with_capacity(rows.len());
    for (key, w) in rows.drain(..) {
        match out.last_mut() {
            Some((k, acc)) if *k == key => *acc += w,
            _ => out.push((key, w)),
        }
    }
    out
}

/// `E[|result|]` of a single relation with no join classes: certain rows
/// count 1, blocks contribute their selection-restricted mass. Shared by
/// the interpreter path and the VM's count program so both are
/// bit-identical.
pub(crate) fn single_expected_count(ct: &CompiledTerm) -> f64 {
    ct.live_certain.count_ones() as f64
        + ct.db
            .columns()
            .block_probs(&ct.live_alts)
            .iter()
            .sum::<f64>()
}

/// Selection-weighted marginal distribution of `attr` over one relation:
/// live certain rows count 1, live alternatives their probability,
/// normalized over the matching mass. With the always-true selection this
/// equals [`crate::query::value_marginal`].
pub(crate) fn value_marginal(ct: &CompiledTerm, attr: AttrId) -> Vec<f64> {
    let cols = ct.db.columns();
    let card = ct.db.schema().cardinality(attr);
    let mut hist = vec![0.0f64; card];
    let ccol = cols.certain().col(attr);
    for r in ct.live_certain.iter_ones() {
        hist[ccol[r] as usize] += 1.0;
    }
    let acol = cols.alternatives().col(attr);
    let probs = cols.alt_probs();
    for r in ct.live_alts.iter_ones() {
        hist[acol[r] as usize] += probs[r];
    }
    let total: f64 = hist.iter().sum();
    if total > 0.0 {
        hist.iter_mut().for_each(|h| *h /= total);
    }
    hist
}
