//! The probabilistic database container.

use crate::block::{Block, BlockError};
use crate::column::{ColumnStore, ShardMap, SHARD_COUNT};
use mrsl_relation::{CompleteTuple, RelationError, Schema};
use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide monotonic data-stamp source backing [`ProbDb::version`].
static DATA_STAMP: AtomicU64 = AtomicU64::new(1);

fn next_stamp() -> u64 {
    DATA_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// A block-independent-disjoint probabilistic database: certain tuples
/// (probability 1) plus independent blocks of mutually exclusive
/// alternatives.
///
/// Next to the row-oriented tuples the database maintains a columnar
/// mirror ([`ProbDb::columns`]), kept in sync by the push paths and
/// rebuilt on deserialization; the exact query evaluators run on it.
#[derive(Debug, Clone, Serialize)]
pub struct ProbDb {
    schema: Arc<Schema>,
    certain: Vec<CompleteTuple>,
    blocks: Vec<Block>,
    #[serde(skip)]
    columns: ColumnStore,
    #[serde(skip)]
    version: u64,
    /// Per-shard version stamps over the leading attribute's value ranges
    /// (see [`ShardMap`]); `shard_versions[s]` is the stamp of the last
    /// push that landed a row in shard `s`. Stamps are process-unique, so
    /// equal stamps for a shard imply the identical push sequence — and
    /// therefore identical shard contents — which is what lets the plan
    /// cache patch only the touched value ranges of its memoized
    /// registers.
    #[serde(skip)]
    shard_versions: Vec<u64>,
    /// How this database was derived: the deriving engine's name, or an
    /// ensemble weights digest. Metadata only — not part of the wire
    /// format, and reset by deserialization.
    #[serde(skip)]
    provenance: Option<String>,
}

impl ProbDb {
    /// Creates an empty database over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        let arity = schema.attr_count();
        let version = next_stamp();
        Self {
            schema,
            certain: Vec::new(),
            blocks: Vec::new(),
            columns: ColumnStore::new(arity),
            version,
            shard_versions: vec![version; SHARD_COUNT],
            provenance: None,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The database's data-version stamp, drawn from a process-wide
    /// monotonic counter on construction and on every mutation. Two
    /// databases report the same stamp only when one is an unmodified
    /// clone of the other — i.e. equal stamps imply identical contents —
    /// which is what lets the plan cache skip its data-dependent guard
    /// re-checks when nothing changed.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The shard map partitioning the leading attribute's dictionary (the
    /// key column the plan cache's register patching shards on).
    pub fn shard_map(&self) -> ShardMap {
        let card = if self.schema.attr_count() > 0 {
            self.schema.cardinality(mrsl_relation::AttrId(0))
        } else {
            1
        };
        ShardMap::new(card)
    }

    /// Per-shard version stamps (see the field docs): equal stamps imply
    /// identical shard contents, across clones and snapshots.
    pub fn shard_versions(&self) -> &[u64] {
        &self.shard_versions
    }

    /// Stamps shard `s` with the database's current version.
    fn touch_shard(&mut self, s: usize) {
        self.shard_versions[s] = self.version;
    }

    /// Adds a certain tuple.
    pub fn push_certain(&mut self, t: CompleteTuple) -> Result<(), RelationError> {
        if t.arity() != self.schema.attr_count() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.attr_count(),
                got: t.arity(),
            });
        }
        let shard = self
            .shard_map()
            .shard_of(t.raw().first().copied().unwrap_or(0));
        self.columns.push_certain(t.raw());
        self.certain.push(t);
        self.version = next_stamp();
        self.touch_shard(shard);
        Ok(())
    }

    /// Adds a block, rejecting alternatives whose arity does not match the
    /// schema (the columnar mirror requires aligned rows).
    pub fn push_block(&mut self, b: Block) -> Result<(), BlockError> {
        let expected = self.schema.attr_count();
        if let Some(a) = b
            .alternatives()
            .iter()
            .find(|a| a.tuple.arity() != expected)
        {
            return Err(BlockError::ArityMismatch {
                expected,
                got: a.tuple.arity(),
            });
        }
        let map = self.shard_map();
        let mut touched = [false; SHARD_COUNT];
        for a in b.alternatives() {
            touched[map.shard_of(a.tuple.raw().first().copied().unwrap_or(0))] = true;
        }
        self.columns.push_block(&b);
        self.blocks.push(b);
        self.version = next_stamp();
        for (s, hit) in touched.into_iter().enumerate() {
            if hit {
                self.touch_shard(s);
            }
        }
        Ok(())
    }

    /// Overwrites the alternative probabilities of block `block` (by
    /// position), keeping its tuples — the write path of tuple-probability
    /// learning, where a gradient step adjusts block masses to fit labeled
    /// query answers.
    ///
    /// `probs` must satisfy the same simplex constraint [`Block::new`]
    /// enforces (positive, finite, summing to 1 within tolerance, one per
    /// alternative); the database is untouched on error. A successful
    /// update bumps [`ProbDb::version`] and restamps exactly the shards
    /// the block's alternatives live in, so warm plan-cache registers
    /// patch the touched key ranges instead of re-binding — mass updates
    /// ride the same incremental maintenance as tuple upserts.
    ///
    /// # Panics
    /// Panics when `block >= self.blocks().len()`.
    pub fn set_block_masses(&mut self, block: usize, probs: &[f64]) -> Result<(), BlockError> {
        let map = self.shard_map();
        let mut touched = [false; SHARD_COUNT];
        for a in self.blocks[block].alternatives() {
            touched[map.shard_of(a.tuple.raw().first().copied().unwrap_or(0))] = true;
        }
        self.blocks[block].set_probs(probs)?;
        self.columns.set_block_probs(block, probs);
        self.version = next_stamp();
        for (s, hit) in touched.into_iter().enumerate() {
            if hit {
                self.touch_shard(s);
            }
        }
        Ok(())
    }

    /// [`ProbDb::set_block_masses`] without the simplex validation and
    /// without version stamping: the finite-difference oracle of the
    /// gradient tests perturbs a single mass off the simplex, which the
    /// public API rightly rejects.
    #[cfg(test)]
    pub(crate) fn set_block_masses_unchecked(&mut self, block: usize, probs: &[f64]) {
        for (a, &p) in self.blocks[block].alternatives_mut().iter_mut().zip(probs) {
            a.prob = p;
        }
        self.columns.set_block_probs(block, probs);
    }

    /// Derivation provenance: which inference engine (or ensemble weights
    /// digest) produced this database, when recorded.
    pub fn provenance(&self) -> Option<&str> {
        self.provenance.as_deref()
    }

    /// Records derivation provenance (see [`ProbDb::provenance`]).
    pub fn set_provenance(&mut self, provenance: impl Into<String>) {
        self.provenance = Some(provenance.into());
    }

    /// The certain tuples.
    pub fn certain(&self) -> &[CompleteTuple] {
        &self.certain
    }

    /// The blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The columnar mirror of the database.
    pub fn columns(&self) -> &ColumnStore {
        &self.columns
    }

    /// Number of possible worlds: the product of block sizes.
    pub fn world_count(&self) -> u128 {
        self.blocks.iter().map(|b| b.len() as u128).product()
    }

    /// Total number of alternatives stored (a size measure of the derived
    /// model, comparable to the paper's block example in Fig. 1).
    pub fn alternative_count(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }
}

// Manual impl: the columnar mirror is skipped during serialization and
// rebuilt here by replaying the tuples through the push paths.
impl Deserialize for ProbDb {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let schema: Arc<Schema> = Deserialize::from_value(v.field("schema")?)?;
        let certain: Vec<CompleteTuple> = Deserialize::from_value(v.field("certain")?)?;
        let blocks: Vec<Block> = Deserialize::from_value(v.field("blocks")?)?;
        let mut db = ProbDb::new(schema);
        for t in certain {
            db.push_certain(t)
                .map_err(|e| DeError::new(e.to_string()))?;
        }
        for b in blocks {
            db.push_block(b).map_err(|e| DeError::new(e.to_string()))?;
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Alternative;
    use mrsl_relation::schema::fig1_schema;
    use mrsl_relation::AttrId;

    fn alt(values: Vec<u16>, prob: f64) -> Alternative {
        Alternative {
            tuple: CompleteTuple::from_values(values),
            prob,
        }
    }

    fn two_block_db() -> ProbDb {
        let mut db = ProbDb::new(fig1_schema());
        db.push_certain(CompleteTuple::from_values(vec![0, 1, 0, 0]))
            .unwrap();
        db.push_block(
            Block::new(
                0,
                vec![alt(vec![0, 0, 0, 0], 0.5), alt(vec![0, 0, 1, 0], 0.5)],
            )
            .unwrap(),
        )
        .unwrap();
        db.push_block(
            Block::new(
                1,
                vec![
                    alt(vec![1, 2, 0, 0], 0.30),
                    alt(vec![1, 2, 0, 1], 0.45),
                    alt(vec![1, 2, 1, 0], 0.10),
                    alt(vec![1, 2, 1, 1], 0.15),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn counts_worlds_and_alternatives() {
        let db = two_block_db();
        assert_eq!(db.world_count(), 8);
        assert_eq!(db.alternative_count(), 6);
        assert_eq!(db.certain().len(), 1);
        assert_eq!(db.blocks().len(), 2);
    }

    #[test]
    fn empty_db_has_one_world() {
        let db = ProbDb::new(fig1_schema());
        assert_eq!(db.world_count(), 1);
        assert_eq!(db.alternative_count(), 0);
    }

    #[test]
    fn rejects_wrong_arity_certain() {
        let mut db = ProbDb::new(fig1_schema());
        let e = db.push_certain(CompleteTuple::from_values(vec![0, 0]));
        assert!(matches!(e, Err(RelationError::ArityMismatch { .. })));
    }

    #[test]
    fn rejects_wrong_arity_block() {
        let mut db = ProbDb::new(fig1_schema());
        let b = Block::new(0, vec![alt(vec![0, 0], 1.0)]).unwrap();
        let e = db.push_block(b);
        assert!(matches!(
            e,
            Err(BlockError::ArityMismatch {
                expected: 4,
                got: 2
            })
        ));
    }

    #[test]
    fn columns_stay_in_sync_with_pushes() {
        let db = two_block_db();
        let cols = db.columns();
        assert_eq!(cols.certain().rows(), 1);
        assert_eq!(cols.alternatives().rows(), 6);
        assert_eq!(cols.block_count(), 2);
        assert_eq!(cols.block_range(1), 2..6);
        // Column contents agree with the row store, attribute by attribute.
        for a in 0..4u16 {
            let attr = AttrId(a);
            let col = cols.certain().col(attr);
            for (i, t) in db.certain().iter().enumerate() {
                assert_eq!(col[i], t.raw()[attr.index()]);
            }
            let alt_col = cols.alternatives().col(attr);
            let mut row = 0;
            for b in db.blocks() {
                for alternative in b.alternatives() {
                    assert_eq!(alt_col[row], alternative.tuple.raw()[attr.index()]);
                    row += 1;
                }
            }
        }
        // Probabilities flattened in the same order.
        assert!((cols.alt_probs()[3] - 0.45).abs() < 1e-12);
    }

    #[test]
    fn pushes_stamp_only_the_touched_shards() {
        let mut db = two_block_db();
        let map = db.shard_map();
        let before = db.shard_versions().to_vec();
        let v0 = db.version();
        // Keys 0 and 1 land in fixed shards of the 2-value dictionary.
        db.push_block(Block::new(2, vec![alt(vec![1, 0, 0, 0], 1.0)]).unwrap())
            .unwrap();
        assert!(db.version() > v0);
        let touched = map.shard_of(1);
        for (s, (&old, &new)) in before.iter().zip(db.shard_versions()).enumerate() {
            if s == touched {
                assert_eq!(new, db.version(), "touched shard restamped");
            } else {
                assert_eq!(new, old, "untouched shard {s} kept its stamp");
            }
        }
        // A clone shares stamps until it diverges.
        let mut clone = db.clone();
        assert_eq!(clone.shard_versions(), db.shard_versions());
        clone
            .push_certain(CompleteTuple::from_values(vec![0, 0, 0, 0]))
            .unwrap();
        let s0 = map.shard_of(0);
        assert_ne!(clone.shard_versions()[s0], db.shard_versions()[s0]);
        assert_eq!(
            clone.shard_versions()[touched],
            db.shard_versions()[touched]
        );
    }

    #[test]
    fn mass_updates_patch_columns_and_restamp_touched_shards() {
        let mut db = two_block_db();
        let map = db.shard_map();
        let before = db.shard_versions().to_vec();
        let v0 = db.version();
        db.set_block_masses(1, &[0.1, 0.2, 0.3, 0.4]).unwrap();
        // Row store and columnar mirror agree on the new masses.
        let probs: Vec<f64> = db.blocks()[1]
            .alternatives()
            .iter()
            .map(|a| a.prob)
            .collect();
        assert_eq!(probs, vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(&db.columns().alt_probs()[2..6], &[0.1, 0.2, 0.3, 0.4]);
        // Version bumped; only the shards holding key value 1 restamped.
        assert!(db.version() > v0);
        let touched = map.shard_of(1);
        for (s, (&old, &new)) in before.iter().zip(db.shard_versions()).enumerate() {
            if s == touched {
                assert_eq!(new, db.version());
            } else {
                assert_eq!(new, old, "untouched shard {s}");
            }
        }
        // Invalid updates leave the database untouched.
        let v1 = db.version();
        let e = db.set_block_masses(1, &[0.5, 0.5]);
        assert!(matches!(
            e,
            Err(BlockError::AlternativeCountMismatch {
                expected: 4,
                got: 2
            })
        ));
        let e = db.set_block_masses(1, &[0.1, 0.2, 0.3, 0.9]);
        assert!(matches!(e, Err(BlockError::NotNormalized(_))));
        let e = db.set_block_masses(1, &[0.0, 0.3, 0.3, 0.4]);
        assert!(matches!(e, Err(BlockError::BadProbability(_))));
        assert_eq!(db.version(), v1);
        assert!((db.columns().alt_probs()[2] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn provenance_is_metadata_not_wire_format() {
        let mut db = two_block_db();
        assert_eq!(db.provenance(), None);
        db.set_provenance("gibbs");
        assert_eq!(db.provenance(), Some("gibbs"));
        let text = serde_json::to_string(&db).unwrap();
        assert!(!text.contains("provenance"));
        let back: ProbDb = serde_json::from_str(&text).unwrap();
        assert_eq!(back.provenance(), None);
    }

    #[test]
    fn deserialization_rebuilds_columns() {
        let db = two_block_db();
        let text = serde_json::to_string(&db).unwrap();
        // The columnar mirror is not part of the wire format.
        assert!(!text.contains("columns"));
        let back: ProbDb = serde_json::from_str(&text).unwrap();
        assert_eq!(back.columns().certain().rows(), 1);
        assert_eq!(back.columns().alternatives().rows(), 6);
        assert_eq!(
            back.columns().alternatives().col(AttrId(3)),
            db.columns().alternatives().col(AttrId(3))
        );
    }
}
