//! The probabilistic database container.

use crate::block::{Block, BlockError};
use mrsl_relation::{CompleteTuple, RelationError, Schema};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A block-independent-disjoint probabilistic database: certain tuples
/// (probability 1) plus independent blocks of mutually exclusive
/// alternatives.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbDb {
    schema: Arc<Schema>,
    certain: Vec<CompleteTuple>,
    blocks: Vec<Block>,
}

impl ProbDb {
    /// Creates an empty database over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        Self {
            schema,
            certain: Vec::new(),
            blocks: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Adds a certain tuple.
    pub fn push_certain(&mut self, t: CompleteTuple) -> Result<(), RelationError> {
        if t.arity() != self.schema.attr_count() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.attr_count(),
                got: t.arity(),
            });
        }
        self.certain.push(t);
        Ok(())
    }

    /// Adds a block.
    ///
    /// # Panics
    /// Panics (debug) if an alternative has the wrong arity.
    pub fn push_block(&mut self, b: Block) -> Result<(), BlockError> {
        debug_assert!(b
            .alternatives()
            .iter()
            .all(|a| a.tuple.arity() == self.schema.attr_count()));
        self.blocks.push(b);
        Ok(())
    }

    /// The certain tuples.
    pub fn certain(&self) -> &[CompleteTuple] {
        &self.certain
    }

    /// The blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of possible worlds: the product of block sizes.
    pub fn world_count(&self) -> u128 {
        self.blocks.iter().map(|b| b.len() as u128).product()
    }

    /// Total number of alternatives stored (a size measure of the derived
    /// model, comparable to the paper's block example in Fig. 1).
    pub fn alternative_count(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Alternative;
    use mrsl_relation::schema::fig1_schema;

    fn alt(values: Vec<u16>, prob: f64) -> Alternative {
        Alternative {
            tuple: CompleteTuple::from_values(values),
            prob,
        }
    }

    fn two_block_db() -> ProbDb {
        let mut db = ProbDb::new(fig1_schema());
        db.push_certain(CompleteTuple::from_values(vec![0, 1, 0, 0]))
            .unwrap();
        db.push_block(
            Block::new(
                0,
                vec![alt(vec![0, 0, 0, 0], 0.5), alt(vec![0, 0, 1, 0], 0.5)],
            )
            .unwrap(),
        )
        .unwrap();
        db.push_block(
            Block::new(
                1,
                vec![
                    alt(vec![1, 2, 0, 0], 0.30),
                    alt(vec![1, 2, 0, 1], 0.45),
                    alt(vec![1, 2, 1, 0], 0.10),
                    alt(vec![1, 2, 1, 1], 0.15),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn counts_worlds_and_alternatives() {
        let db = two_block_db();
        assert_eq!(db.world_count(), 8);
        assert_eq!(db.alternative_count(), 6);
        assert_eq!(db.certain().len(), 1);
        assert_eq!(db.blocks().len(), 2);
    }

    #[test]
    fn empty_db_has_one_world() {
        let db = ProbDb::new(fig1_schema());
        assert_eq!(db.world_count(), 1);
        assert_eq!(db.alternative_count(), 0);
    }

    #[test]
    fn rejects_wrong_arity_certain() {
        let mut db = ProbDb::new(fig1_schema());
        let e = db.push_certain(CompleteTuple::from_values(vec![0, 0]));
        assert!(matches!(e, Err(RelationError::ArityMismatch { .. })));
    }
}
