//! Tuple-probability learning: gradient descent on block masses.
//!
//! A derived catalog's block-alternative masses are estimates; when some
//! query answers are *known* (audited counts, gold labels), the masses can
//! be adjusted to fit them. [`fit_block_masses`] descends the squared
//! error
//!
//! ```text
//!     L = (1/|T|) Σ_q  (P(q) − target_q)²
//! ```
//!
//! using the exact reverse-mode safe-plan gradients of
//! [`CatalogEngine::probability_with_gradient`]: each epoch accumulates
//! `∂L/∂m` over every labeled training query, takes one Adam step per
//! alternative mass, and projects every block back onto its probability
//! simplex (clamp to a mass floor, renormalize to sum 1) before applying
//! it through [`ProbDb::set_block_masses`] — so the catalog stays a valid
//! BID database after every epoch and live readers see each epoch as one
//! atomic version bump per relation.
//!
//! Non-liftable queries surface as
//! [`ProbDbError::NotDifferentiable`](mrsl_probdb::ProbDbError) from the
//! first epoch rather than silently skewing the fit.
//!
//! [`CatalogEngine::probability_with_gradient`]: mrsl_probdb::CatalogEngine::probability_with_gradient
//! [`ProbDb::set_block_masses`]: mrsl_probdb::ProbDb::set_block_masses

use mrsl_probdb::{Catalog, CatalogEngine, ProbDbError, Query};
use std::collections::BTreeMap;

/// A query whose boolean probability has a known target value.
#[derive(Debug, Clone)]
pub struct LabeledQuery {
    /// The (safe, liftable) boolean query.
    pub query: Query,
    /// The target `P(query)` in `[0, 1]`.
    pub target: f64,
}

impl LabeledQuery {
    /// Convenience constructor.
    pub fn new(query: Query, target: f64) -> Self {
        Self { query, target }
    }
}

/// Hyper-parameters for [`fit_block_masses`].
#[derive(Debug, Clone, Copy)]
pub struct MassFitConfig {
    /// Full passes over the training labels.
    pub epochs: usize,
    /// Adam step size.
    pub learning_rate: f64,
    /// Adam first-moment decay.
    pub beta1: f64,
    /// Adam second-moment decay.
    pub beta2: f64,
    /// Adam denominator stabilizer.
    pub adam_eps: f64,
    /// Mass floor applied before renormalizing each block: keeps every
    /// alternative strictly positive so no world is ever ruled out
    /// irreversibly (a zero mass has zero gradient forever).
    pub min_mass: f64,
}

impl Default for MassFitConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            learning_rate: 0.05,
            beta1: 0.9,
            beta2: 0.999,
            adam_eps: 1e-8,
            min_mass: 1e-4,
        }
    }
}

/// Loss trajectory of a [`fit_block_masses`] run.
#[derive(Debug, Clone)]
pub struct MassFitReport {
    /// Mean squared training error, one entry per epoch boundary:
    /// `train_loss[0]` is the pre-fit loss, `train_loss[epochs]` the final
    /// loss (`epochs + 1` entries).
    pub train_loss: Vec<f64>,
    /// Mean squared validation error on the same boundaries; empty when
    /// no validation labels were supplied.
    pub validation_loss: Vec<f64>,
    /// Epochs actually run.
    pub epochs: usize,
    /// Relations whose masses were updated, sorted by name.
    pub relations: Vec<String>,
}

impl MassFitReport {
    /// Pre-fit mean squared training error.
    pub fn initial_train_loss(&self) -> f64 {
        self.train_loss.first().copied().unwrap_or(0.0)
    }

    /// Post-fit mean squared training error.
    pub fn final_train_loss(&self) -> f64 {
        self.train_loss.last().copied().unwrap_or(0.0)
    }
}

/// Per-relation Adam state, one slot per flattened alternative row.
struct AdamState {
    m1: Vec<f64>,
    m2: Vec<f64>,
}

/// Fits the block-alternative masses of `catalog` to labeled query
/// answers by projected Adam on the exact safe-plan gradients.
///
/// Every epoch evaluates each training query with
/// [`CatalogEngine::probability_with_gradient`], accumulates
/// `2 (P − target) ∂P/∂m` per alternative row, steps every touched
/// relation's masses with Adam, clamps each mass to `config.min_mass`,
/// renormalizes each block to sum 1 and applies the result through
/// [`ProbDb::set_block_masses`]. Updated relations get `+mass-fit`
/// appended to their provenance.
///
/// Returns the per-epoch train (and, when `validation` is non-empty,
/// validation) mean-squared-error trajectory; index 0 is the pre-fit
/// loss, the last index the post-fit loss.
///
/// # Errors
/// Propagates planner errors: unknown relations, unsafe plans, and
/// non-liftable (hence non-differentiable) safe plans.
///
/// [`CatalogEngine::probability_with_gradient`]: mrsl_probdb::CatalogEngine::probability_with_gradient
/// [`ProbDb::set_block_masses`]: mrsl_probdb::ProbDb::set_block_masses
pub fn fit_block_masses(
    catalog: &mut Catalog,
    train: &[LabeledQuery],
    validation: &[LabeledQuery],
    config: &MassFitConfig,
) -> Result<MassFitReport, ProbDbError> {
    let mut adam: BTreeMap<String, AdamState> = BTreeMap::new();
    let mut train_loss = Vec::with_capacity(config.epochs + 1);
    let mut validation_loss = Vec::with_capacity(config.epochs + 1);
    let mut touched: BTreeMap<String, bool> = BTreeMap::new();

    for step in 0..=config.epochs {
        // Forward + backward pass under an immutable borrow of the
        // catalog; the mutable mass update happens after the engine is
        // dropped.
        let mut grad_acc: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let mut mse = 0.0;
        {
            let engine = CatalogEngine::new(catalog);
            for lq in train {
                let (p, grads) = engine.probability_with_gradient(&lq.query)?;
                let residual = p - lq.target;
                mse += residual * residual;
                for (rel, g) in grads.relations {
                    let acc = grad_acc.entry(rel).or_insert_with(|| vec![0.0; g.len()]);
                    for (a, &d) in acc.iter_mut().zip(&g) {
                        *a += 2.0 * residual * d;
                    }
                }
            }
            if !train.is_empty() {
                mse /= train.len() as f64;
            }
            train_loss.push(mse);
            if !validation.is_empty() {
                let mut vmse = 0.0;
                for lq in validation {
                    let (p, _) = engine.probability(&lq.query)?;
                    let residual = p - lq.target;
                    vmse += residual * residual;
                }
                validation_loss.push(vmse / validation.len() as f64);
            }
        }
        // The final iteration only records the post-fit losses.
        if step == config.epochs {
            break;
        }

        let t = (step + 1) as i32;
        for (rel, mut grad) in grad_acc {
            let Some(db) = catalog.get_mut(&rel) else {
                continue;
            };
            if grad.is_empty() {
                continue;
            }
            // Project the gradient onto each block's simplex tangent
            // space (zero-sum within the block) *before* Adam: the
            // common-mode component is unrealizable under the sum-to-1
            // constraint, and Adam's per-coordinate rescaling would
            // otherwise amplify it into identical steps the final
            // renormalization cancels.
            let mut offset = 0;
            for b in db.blocks() {
                let slice = &mut grad[offset..offset + b.len()];
                let mean = slice.iter().sum::<f64>() / b.len() as f64;
                slice.iter_mut().for_each(|g| *g -= mean);
                offset += b.len();
            }
            let state = adam.entry(rel.clone()).or_insert_with(|| AdamState {
                m1: vec![0.0; grad.len()],
                m2: vec![0.0; grad.len()],
            });
            // Current masses in the same flattened block order the
            // gradient uses.
            let mut masses: Vec<f64> = db
                .blocks()
                .iter()
                .flat_map(|b| b.alternatives().iter().map(|a| a.prob))
                .collect();
            debug_assert_eq!(masses.len(), grad.len());
            let c1 = 1.0 - config.beta1.powi(t);
            let c2 = 1.0 - config.beta2.powi(t);
            for i in 0..grad.len() {
                state.m1[i] = config.beta1 * state.m1[i] + (1.0 - config.beta1) * grad[i];
                state.m2[i] = config.beta2 * state.m2[i] + (1.0 - config.beta2) * grad[i] * grad[i];
                let mhat = state.m1[i] / c1;
                let vhat = state.m2[i] / c2;
                masses[i] -= config.learning_rate * mhat / (vhat.sqrt() + config.adam_eps);
            }
            // Project each block back onto its floored simplex and
            // apply: reserve `min_mass` per alternative, then scale the
            // excess above the floor to spend the remaining budget — so
            // every mass ends exactly `≥ min_mass` and the block sums
            // to 1.
            let mut offset = 0;
            for b in 0..db.blocks().len() {
                let len = db.blocks()[b].len();
                let slice = &mut masses[offset..offset + len];
                let budget = 1.0 - config.min_mass * len as f64;
                let excess: f64 = slice.iter().map(|m| (m - config.min_mass).max(0.0)).sum();
                for m in slice.iter_mut() {
                    let over = (*m - config.min_mass).max(0.0);
                    *m = if excess > 0.0 {
                        config.min_mass + over * budget / excess
                    } else {
                        1.0 / len as f64
                    };
                }
                db.set_block_masses(b, &masses[offset..offset + len])
                    .expect("projected masses form a valid distribution");
                offset += len;
            }
            touched.insert(rel, true);
        }
    }

    for rel in touched.keys() {
        if let Some(db) = catalog.get_mut(rel) {
            let provenance = match db.provenance() {
                Some(p) if p.ends_with("+mass-fit") => p.to_string(),
                Some(p) => format!("{p}+mass-fit"),
                None => "mass-fit".to_string(),
            };
            db.set_provenance(provenance);
        }
    }

    Ok(MassFitReport {
        train_loss,
        validation_loss,
        epochs: config.epochs,
        relations: touched.into_keys().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsl_probdb::{Alternative, Block, Predicate, ProbDb};
    use mrsl_relation::{AttrId, CompleteTuple, Schema, ValueId};
    use std::sync::Arc;

    fn alt(values: Vec<u16>, prob: f64) -> Alternative {
        Alternative {
            tuple: CompleteTuple::from_values(values),
            prob,
        }
    }

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .attribute("k", ["a", "b", "c"])
            .attribute("v", ["x", "y", "z"])
            .build()
            .unwrap()
    }

    /// One relation, two blocks over attribute `v`.
    fn db_with(masses: [[f64; 2]; 2]) -> ProbDb {
        let mut db = ProbDb::new(schema());
        db.push_block(
            Block::new(
                0,
                vec![alt(vec![0, 0], masses[0][0]), alt(vec![0, 1], masses[0][1])],
            )
            .unwrap(),
        )
        .unwrap();
        db.push_block(
            Block::new(
                1,
                vec![alt(vec![1, 0], masses[1][0]), alt(vec![1, 1], masses[1][1])],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn labels(catalog: &Catalog) -> Vec<LabeledQuery> {
        // Selection probabilities of each value of `v`, plus one key
        // slice: enough signal to pin down both blocks.
        let engine = CatalogEngine::new(catalog);
        [
            Predicate::eq(AttrId(1), ValueId(0)),
            Predicate::eq(AttrId(1), ValueId(1)),
            Predicate::eq(AttrId(0), ValueId(0)).and_eq(AttrId(1), ValueId(0)),
            Predicate::eq(AttrId(0), ValueId(1)).and_eq(AttrId(1), ValueId(1)),
        ]
        .into_iter()
        .map(|pred| {
            let q = Query::scan("r").filter(pred);
            let target = engine.probability(&q).unwrap().0;
            LabeledQuery::new(q, target)
        })
        .collect()
    }

    #[test]
    fn gradient_descent_recovers_planted_masses() {
        // Targets computed from the planted masses...
        let planted = [[0.8, 0.2], [0.3, 0.7]];
        let mut truth = Catalog::new();
        truth.add("r", db_with(planted)).unwrap();
        let train = labels(&truth);
        let validation = train[2..].to_vec();

        // ...fit from a deliberately wrong start.
        let mut catalog = Catalog::new();
        catalog.add("r", db_with([[0.5, 0.5], [0.5, 0.5]])).unwrap();
        let config = MassFitConfig {
            epochs: 400,
            learning_rate: 0.02,
            ..MassFitConfig::default()
        };
        let report = fit_block_masses(&mut catalog, &train[..], &validation, &config).unwrap();

        assert_eq!(report.train_loss.len(), config.epochs + 1);
        assert_eq!(report.validation_loss.len(), config.epochs + 1);
        assert_eq!(report.relations, vec!["r".to_string()]);
        assert!(report.final_train_loss() < report.initial_train_loss() / 100.0);
        assert!(
            report.validation_loss.last().unwrap() < report.validation_loss.first().unwrap(),
            "validation loss must shrink"
        );
        let fitted = catalog.get("r").unwrap();
        for (b, want) in planted.iter().enumerate() {
            for (j, &m) in want.iter().enumerate() {
                let got = fitted.blocks()[b].alternatives()[j].prob;
                assert!(
                    (got - m).abs() < 0.02,
                    "block {b} alt {j}: fitted {got}, planted {m}"
                );
            }
        }
        assert_eq!(fitted.provenance(), Some("mass-fit"));
    }

    #[test]
    fn fitting_keeps_blocks_on_the_simplex_every_epoch() {
        let mut catalog = Catalog::new();
        catalog.add("r", db_with([[0.6, 0.4], [0.5, 0.5]])).unwrap();
        // An extreme target drives masses toward the boundary; the floor
        // must keep every alternative alive.
        let train = vec![LabeledQuery::new(
            Query::scan("r").filter(Predicate::eq(AttrId(1), ValueId(0))),
            0.0,
        )];
        let config = MassFitConfig {
            epochs: 50,
            learning_rate: 0.2,
            ..MassFitConfig::default()
        };
        fit_block_masses(&mut catalog, &train, &[], &config).unwrap();
        let db = catalog.get("r").unwrap();
        for b in db.blocks() {
            let sum: f64 = b.alternatives().iter().map(|a| a.prob).sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(b.alternatives().iter().all(|a| a.prob >= config.min_mass));
        }
    }

    #[test]
    fn provenance_gains_the_mass_fit_suffix_once() {
        let mut catalog = Catalog::new();
        let mut db = db_with([[0.6, 0.4], [0.5, 0.5]]);
        db.set_provenance("gibbs");
        catalog.add("r", db).unwrap();
        let train = labels(&{
            let mut c = Catalog::new();
            c.add("r", db_with([[0.7, 0.3], [0.4, 0.6]])).unwrap();
            c
        });
        let config = MassFitConfig {
            epochs: 3,
            ..MassFitConfig::default()
        };
        fit_block_masses(&mut catalog, &train, &[], &config).unwrap();
        fit_block_masses(&mut catalog, &train, &[], &config).unwrap();
        assert_eq!(
            catalog.get("r").unwrap().provenance(),
            Some("gibbs+mass-fit")
        );
    }

    #[test]
    fn planner_errors_propagate() {
        let mut catalog = Catalog::new();
        catalog.add("r", db_with([[0.6, 0.4], [0.5, 0.5]])).unwrap();
        let train = vec![LabeledQuery::new(Query::scan("missing"), 0.5)];
        let err = fit_block_masses(&mut catalog, &train, &[], &MassFitConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn empty_training_set_is_a_no_op() {
        let mut catalog = Catalog::new();
        catalog.add("r", db_with([[0.6, 0.4], [0.5, 0.5]])).unwrap();
        let before = catalog.get("r").unwrap().version();
        let report = fit_block_masses(&mut catalog, &[], &[], &MassFitConfig::default()).unwrap();
        assert!(report.relations.is_empty());
        assert_eq!(catalog.get("r").unwrap().version(), before);
    }
}
