//! Weighted inference ensembles with learned per-engine weights.
//!
//! The paper's "inference ensemble" is one model queried through several
//! strategies; [`EnsembleEngine`] takes the next step and *mixes* the
//! strategies' estimates under per-engine weights,
//!
//! ```text
//!     Δt = Σ_m  w_m · Δt_m        (w on the simplex)
//! ```
//!
//! with the weights fit on held-out **observed** tuples: each held-out
//! tuple has one attribute masked, every member scores the probability it
//! assigns the true value, and [`fit_ensemble_weights`] turns that score
//! matrix into weights by one of three [`WeightStrategy`]s (total
//! likelihood, EM over responsibilities, k-fold stacking).
//!
//! Scoring runs through [`infer_batch`], so fitting inherits its
//! determinism guarantee: weights are bit-identical for any worker-thread
//! count.

use mrsl_core::{
    infer_batch, GibbsConfig, GibbsSampler, IndependentBaseline, InferContext, InferenceEngine,
    JointEstimate, MrslModel, SingleVoting, TupleDagWorkload, VotingConfig,
};
use mrsl_relation::{CompleteTuple, JointIndexer, PartialTuple, ValueId};
use mrsl_util::derive_seed;
use std::fmt;

/// Probability floor used when taking logarithms of member scores.
const SCORE_FLOOR: f64 = 1e-12;

/// Errors reported by the learning subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum LearnError {
    /// An ensemble needs at least one member engine.
    NoMembers,
    /// The weight vector's length does not match the member count.
    WeightCountMismatch {
        /// Number of member engines.
        members: usize,
        /// Number of weights supplied.
        weights: usize,
    },
    /// A weight is negative, non-finite, or the weights sum to zero.
    BadWeights,
    /// Weight fitting needs at least one held-out tuple.
    NoHoldout,
    /// Stacking needs at least two folds and at least `folds` instances.
    BadFolds {
        /// Requested fold count.
        folds: usize,
        /// Available instances.
        instances: usize,
    },
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoMembers => write!(f, "ensemble needs at least one member engine"),
            Self::WeightCountMismatch { members, weights } => {
                write!(f, "{weights} weights supplied for {members} members")
            }
            Self::BadWeights => write!(f, "weights must be non-negative, finite and not all zero"),
            Self::NoHoldout => write!(f, "weight fitting needs at least one held-out tuple"),
            Self::BadFolds { folds, instances } => {
                write!(f, "cannot split {instances} instances into {folds} folds")
            }
        }
    }
}

impl std::error::Error for LearnError {}

/// How [`fit_ensemble_weights`] turns the held-out score matrix into
/// member weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightStrategy {
    /// Softmax of the per-member total log-likelihood: members that
    /// explain the held-out values better get exponentially more weight.
    Likelihood,
    /// Mixture EM: iterate responsibilities `r_im ∝ w_m p_im` and weight
    /// updates `w_m = mean_i r_im` until the weights move less than `tol`.
    Em {
        /// Iteration cap.
        max_iters: usize,
        /// Convergence threshold on the max absolute weight change.
        tol: f64,
    },
    /// K-fold stacking: EM-fit weights on each fold's complement, average
    /// the per-fold weights, and smooth with a pseudocount before
    /// renormalizing — less variance than one EM fit on everything.
    Stacking {
        /// Number of folds (≥ 2).
        folds: usize,
        /// Additive smoothing applied to the averaged weights.
        pseudocount: f64,
    },
}

/// What [`fit_ensemble_weights`] learned, alongside the fitted engine.
#[derive(Debug, Clone)]
pub struct EnsembleFitReport {
    /// Fitted weights, aligned with `members` and summing to 1.
    pub weights: Vec<f64>,
    /// Member engine names, in ensemble order.
    pub members: Vec<&'static str>,
    /// Per-member total log-likelihood of the held-out true values.
    pub log_likelihoods: Vec<f64>,
    /// Number of held-out (tuple, masked attribute) instances scored.
    pub instances: usize,
    /// Per-member top-1 accuracy on the held-out instances.
    pub member_accuracy: Vec<f64>,
    /// Top-1 accuracy of the fitted weighted mixture.
    pub ensemble_accuracy: f64,
    /// Top-1 accuracy of the uniform (unweighted voting) mixture — the
    /// baseline the learned weights must match or beat.
    pub uniform_accuracy: f64,
    /// Held-out log-likelihood of the fitted mixture. For
    /// [`WeightStrategy::Em`] (which starts from uniform weights and
    /// ascends this objective monotonically) it is never below
    /// [`EnsembleFitReport::uniform_log_likelihood`].
    pub ensemble_log_likelihood: f64,
    /// Held-out log-likelihood of the uniform mixture.
    pub uniform_log_likelihood: f64,
    /// EM iterations actually run (0 for [`WeightStrategy::Likelihood`]).
    pub em_iterations: usize,
}

/// A weighted mixture of [`InferenceEngine`]s, itself an engine.
///
/// `estimate` runs every positively-weighted member with a distinct seed
/// derived from the context's per-tuple seed and returns the weighted sum
/// of the members' distributions. [`SingleVoting`] members are skipped on
/// tuples with two or more missing attributes (single-attribute voting
/// cannot represent their correlations); the remaining weights renormalize
/// for that tuple.
pub struct EnsembleEngine {
    members: Vec<Box<dyn InferenceEngine>>,
    weights: Vec<f64>,
}

impl EnsembleEngine {
    /// Builds an ensemble from members and (not necessarily normalized)
    /// non-negative weights; the weights are normalized to sum to 1.
    pub fn new(
        members: Vec<Box<dyn InferenceEngine>>,
        weights: Vec<f64>,
    ) -> Result<Self, LearnError> {
        if members.is_empty() {
            return Err(LearnError::NoMembers);
        }
        if members.len() != weights.len() {
            return Err(LearnError::WeightCountMismatch {
                members: members.len(),
                weights: weights.len(),
            });
        }
        let sum: f64 = weights.iter().sum();
        if weights.iter().any(|&w| !w.is_finite() || w < 0.0) || sum <= 0.0 {
            return Err(LearnError::BadWeights);
        }
        let weights = weights.into_iter().map(|w| w / sum).collect();
        Ok(Self { members, weights })
    }

    /// An ensemble voting uniformly over its members.
    pub fn uniform(members: Vec<Box<dyn InferenceEngine>>) -> Result<Self, LearnError> {
        let n = members.len();
        Self::new(members, vec![1.0; n.max(1)])
    }

    /// The paper's four engines under uniform weights: `single-voting`,
    /// `gibbs`, `independent`, `tuple-dag` (sampling members configured
    /// from `gibbs`).
    pub fn standard(gibbs: &GibbsConfig) -> Self {
        Self::uniform(standard_members(gibbs)).expect("four members")
    }

    /// The normalized member weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Member names, in ensemble order.
    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }

    /// FNV-1a digest of the member names and exact weight bits — a stable
    /// fingerprint of *which* learned mixture derived a database, carried
    /// into serving statistics as the catalog provenance.
    pub fn weights_digest(&self) -> u64 {
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                acc = (acc ^ b as u64).wrapping_mul(0x0100_0000_01b3);
            }
        };
        for (m, &w) in self.members.iter().zip(&self.weights) {
            eat(m.name().as_bytes());
            eat(&w.to_bits().to_le_bytes());
        }
        acc
    }

    /// Human-readable provenance string, e.g.
    /// `ensemble[single-voting:0.42,gibbs:0.18,...]#1a2b3c4d5e6f7788`.
    pub fn describe(&self) -> String {
        let parts: Vec<String> = self
            .members
            .iter()
            .zip(&self.weights)
            .map(|(m, w)| format!("{}:{:.3}", m.name(), w))
            .collect();
        format!(
            "ensemble[{}]#{:016x}",
            parts.join(","),
            self.weights_digest()
        )
    }
}

impl fmt::Debug for EnsembleEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnsembleEngine")
            .field("members", &self.member_names())
            .field("weights", &self.weights)
            .finish()
    }
}

impl InferenceEngine for EnsembleEngine {
    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn estimate(&self, ctx: &mut InferContext<'_>, t: &PartialTuple) -> JointEstimate {
        let indexer = JointIndexer::new(ctx.model().schema(), t.missing_mask());
        if indexer.size() == 1 {
            return JointEstimate {
                indexer,
                probs: vec![1.0],
                sample_count: 0,
            };
        }
        let base = ctx.seed();
        let multi = t.missing_mask().count() > 1;
        let mut probs = vec![0.0f64; indexer.size()];
        let mut sample_count = 0;
        let mut used = 0.0;
        for (i, (member, &w)) in self.members.iter().zip(&self.weights).enumerate() {
            if w == 0.0 || (multi && member.name() == SingleVoting.name()) {
                continue;
            }
            // Distinct per-member seeds keep sampling members' chains
            // independent of each other while staying a pure function of
            // the per-tuple seed the batch layer assigned.
            ctx.set_seed(derive_seed(base, &[i as u64]));
            let est = member.estimate(ctx, t);
            for (acc, &p) in probs.iter_mut().zip(&est.probs) {
                *acc += w * p;
            }
            sample_count += est.sample_count;
            used += w;
        }
        ctx.set_seed(base);
        if used == 0.0 {
            // Every member was skipped (e.g. a single-voting-only ensemble
            // on a multi-missing tuple): fall back to uniform.
            probs.fill(1.0 / indexer.size() as f64);
        } else {
            // The members' distributions are normalized, so the mixture's
            // mass is `used`; renormalize it (and floating drift) away.
            let total: f64 = probs.iter().sum();
            probs.iter_mut().for_each(|p| *p /= total);
        }
        JointEstimate {
            indexer,
            probs,
            sample_count,
        }
    }
}

/// The paper's four engines, boxed for [`EnsembleEngine`] membership.
pub fn standard_members(gibbs: &GibbsConfig) -> Vec<Box<dyn InferenceEngine>> {
    vec![
        Box::new(SingleVoting),
        Box::new(GibbsSampler::from_config(gibbs)),
        Box::new(IndependentBaseline),
        Box::new(TupleDagWorkload::from_config(gibbs)),
    ]
}

/// One held-out scoring instance: an observed tuple with one attribute
/// masked, and the index of the true value in the masked joint.
struct Instance {
    masked: PartialTuple,
    truth: usize,
}

/// Fits ensemble weights on held-out observed tuples.
///
/// Every tuple of `holdout` contributes one instance per attribute: the
/// attribute is masked, each member estimates the resulting
/// single-attribute joint through [`infer_batch`] (deterministic for any
/// thread count), and the probability it assigns the true value becomes
/// that member's score. `strategy` then turns the score matrix into
/// weights. Returns the fitted engine plus an [`EnsembleFitReport`] with
/// per-member log-likelihoods and held-out accuracies.
pub fn fit_ensemble_weights(
    model: &MrslModel,
    holdout: &[CompleteTuple],
    voting: VotingConfig,
    members: Vec<Box<dyn InferenceEngine>>,
    strategy: WeightStrategy,
    seed: u64,
) -> Result<(EnsembleEngine, EnsembleFitReport), LearnError> {
    if members.is_empty() {
        return Err(LearnError::NoMembers);
    }
    if holdout.is_empty() {
        return Err(LearnError::NoHoldout);
    }
    let instances = build_instances(model, holdout);
    let workload: Vec<PartialTuple> = instances.iter().map(|i| i.masked.clone()).collect();

    // Score matrix: scores[m][i] = p_m(true value of instance i), plus the
    // full distributions for accuracy bookkeeping.
    let mut scores: Vec<Vec<f64>> = Vec::with_capacity(members.len());
    let mut dists: Vec<Vec<Vec<f64>>> = Vec::with_capacity(members.len());
    for (m, member) in members.iter().enumerate() {
        let result = infer_batch(
            model,
            &workload,
            member.as_ref(),
            voting,
            derive_seed(seed, &[m as u64]),
        );
        let mut member_scores = Vec::with_capacity(instances.len());
        let mut member_dists = Vec::with_capacity(instances.len());
        for (inst, est) in instances.iter().zip(&result.estimates) {
            member_scores.push(est.probs[inst.truth].max(SCORE_FLOOR));
            member_dists.push(est.probs.clone());
        }
        scores.push(member_scores);
        dists.push(member_dists);
    }

    let log_likelihoods: Vec<f64> = scores
        .iter()
        .map(|s| s.iter().map(|p| p.ln()).sum())
        .collect();

    let (weights, em_iterations) = match strategy {
        WeightStrategy::Likelihood => (likelihood_weights(&log_likelihoods), 0),
        WeightStrategy::Em { max_iters, tol } => {
            let init = vec![1.0 / members.len() as f64; members.len()];
            em_weights(&scores, init, max_iters, tol)
        }
        WeightStrategy::Stacking { folds, pseudocount } => {
            stacking_weights(&scores, instances.len(), folds, pseudocount)?
        }
    };

    let member_accuracy: Vec<f64> = dists
        .iter()
        .map(|d| top1_accuracy(&instances, |i| d[i].clone()))
        .collect();
    let mix = |w: &[f64], i: usize| -> Vec<f64> {
        let size = dists[0][i].len();
        let mut out = vec![0.0; size];
        for (m, d) in dists.iter().enumerate() {
            for (acc, &p) in out.iter_mut().zip(&d[i]) {
                *acc += w[m] * p;
            }
        }
        out
    };
    let ensemble_accuracy = top1_accuracy(&instances, |i| mix(&weights, i));
    let uniform = vec![1.0 / members.len() as f64; members.len()];
    let uniform_accuracy = top1_accuracy(&instances, |i| mix(&uniform, i));
    let mixture_ll = |w: &[f64]| -> f64 {
        (0..instances.len())
            .map(|i| {
                scores
                    .iter()
                    .enumerate()
                    .map(|(m, s)| w[m] * s[i])
                    .sum::<f64>()
                    .max(SCORE_FLOOR)
                    .ln()
            })
            .sum()
    };
    let ensemble_log_likelihood = mixture_ll(&weights);
    let uniform_log_likelihood = mixture_ll(&uniform);

    let engine = EnsembleEngine::new(members, weights)?;
    let report = EnsembleFitReport {
        // Read back from the engine so report and engine agree to the
        // last bit after the constructor's renormalization.
        weights: engine.weights().to_vec(),
        members: engine.member_names(),
        log_likelihoods,
        instances: instances.len(),
        member_accuracy,
        ensemble_accuracy,
        uniform_accuracy,
        ensemble_log_likelihood,
        uniform_log_likelihood,
        em_iterations,
    };
    Ok((engine, report))
}

/// Masks every attribute of every held-out tuple in turn.
fn build_instances(model: &MrslModel, holdout: &[CompleteTuple]) -> Vec<Instance> {
    let schema = model.schema();
    let mut instances = Vec::with_capacity(holdout.len() * schema.attr_count());
    for t in holdout {
        for (a, &true_value) in t.raw().iter().enumerate() {
            let slots: Vec<Option<u16>> = t
                .raw()
                .iter()
                .enumerate()
                .map(|(j, &v)| (j != a).then_some(v))
                .collect();
            let masked = PartialTuple::from_options(&slots);
            let indexer = JointIndexer::new(schema, masked.missing_mask());
            let truth = indexer.index_of(&[ValueId(true_value)]);
            instances.push(Instance { masked, truth });
        }
    }
    instances
}

fn top1_accuracy(instances: &[Instance], dist: impl Fn(usize) -> Vec<f64>) -> f64 {
    let hits = instances
        .iter()
        .enumerate()
        .filter(|(i, inst)| argmax(&dist(*i)) == inst.truth)
        .count();
    hits as f64 / instances.len() as f64
}

fn argmax(probs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &p) in probs.iter().enumerate() {
        if p > probs[best] {
            best = i;
        }
    }
    best
}

/// Softmax of total log-likelihoods, shifted by the max for stability.
fn likelihood_weights(log_likelihoods: &[f64]) -> Vec<f64> {
    let max = log_likelihoods
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let mut w: Vec<f64> = log_likelihoods.iter().map(|ll| (ll - max).exp()).collect();
    let sum: f64 = w.iter().sum();
    w.iter_mut().for_each(|x| *x /= sum);
    w
}

/// Mixture EM on the score matrix, from `weights` as the starting point.
/// Returns the converged weights and the iterations run.
fn em_weights(
    scores: &[Vec<f64>],
    mut weights: Vec<f64>,
    max_iters: usize,
    tol: f64,
) -> (Vec<f64>, usize) {
    let members = scores.len();
    let instances = scores[0].len();
    let mut iters = 0;
    for _ in 0..max_iters {
        iters += 1;
        let mut next = vec![0.0f64; members];
        #[allow(clippy::needless_range_loop)] // `i` indexes every member's column.
        for i in 0..instances {
            let denom: f64 = (0..members).map(|m| weights[m] * scores[m][i]).sum();
            if denom <= 0.0 {
                continue;
            }
            for (m, slot) in next.iter_mut().enumerate() {
                *slot += weights[m] * scores[m][i] / denom;
            }
        }
        next.iter_mut().for_each(|w| *w /= instances as f64);
        let delta = weights
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        weights = next;
        if delta < tol {
            break;
        }
    }
    (weights, iters)
}

/// K-fold stacking: EM on each fold's complement, averaged and smoothed.
fn stacking_weights(
    scores: &[Vec<f64>],
    instances: usize,
    folds: usize,
    pseudocount: f64,
) -> Result<(Vec<f64>, usize), LearnError> {
    if folds < 2 || instances < folds {
        return Err(LearnError::BadFolds { folds, instances });
    }
    let members = scores.len();
    let mut acc = vec![0.0f64; members];
    let mut total_iters = 0;
    for fold in 0..folds {
        // Fold f holds out instances with index ≡ f (mod folds); EM runs
        // on the rest.
        let train: Vec<Vec<f64>> = scores
            .iter()
            .map(|s| {
                s.iter()
                    .enumerate()
                    .filter(|(i, _)| i % folds != fold)
                    .map(|(_, &p)| p)
                    .collect()
            })
            .collect();
        let init = vec![1.0 / members as f64; members];
        let (w, iters) = em_weights(&train, init, 200, 1e-10);
        total_iters += iters;
        for (a, x) in acc.iter_mut().zip(&w) {
            *a += x;
        }
    }
    let mut weights: Vec<f64> = acc
        .into_iter()
        .map(|a| a / folds as f64 + pseudocount)
        .collect();
    let sum: f64 = weights.iter().sum();
    weights.iter_mut().for_each(|w| *w /= sum);
    Ok((weights, total_iters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsl_core::{LearnConfig, MrslModel};
    use mrsl_relation::relation::fig1_relation;

    fn quick_gibbs() -> GibbsConfig {
        GibbsConfig {
            burn_in: 20,
            samples: 200,
            voting: VotingConfig::best_averaged(),
        }
    }

    fn model() -> MrslModel {
        let rel = fig1_relation();
        MrslModel::learn(
            rel.schema(),
            rel.complete_part(),
            &LearnConfig {
                support_threshold: 0.01,
                max_itemsets: 1000,
            },
        )
    }

    fn fit(strategy: WeightStrategy, seed: u64) -> (EnsembleEngine, EnsembleFitReport) {
        let rel = fig1_relation();
        let m = model();
        fit_ensemble_weights(
            &m,
            rel.complete_part(),
            VotingConfig::best_averaged(),
            standard_members(&quick_gibbs()),
            strategy,
            seed,
        )
        .expect("holdout is non-empty")
    }

    #[test]
    fn ensemble_estimate_is_a_normalized_mixture() {
        let m = model();
        let ensemble = EnsembleEngine::standard(&quick_gibbs());
        let mut ctx = InferContext::new(&m, VotingConfig::best_averaged(), 5);
        for t in [
            PartialTuple::from_options(&[None, Some(0), Some(0), Some(1)]),
            PartialTuple::from_options(&[None, None, Some(0), Some(1)]),
        ] {
            ctx.set_seed(5);
            let est = ensemble.estimate(&mut ctx, &t);
            assert!((est.probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(est.probs.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn degenerate_weights_reproduce_the_single_member() {
        let m = model();
        // All weight on the deterministic independent baseline.
        let ensemble = EnsembleEngine::new(
            vec![Box::new(IndependentBaseline), Box::new(SingleVoting)],
            vec![1.0, 0.0],
        )
        .unwrap();
        let t = PartialTuple::from_options(&[None, None, Some(0), Some(1)]);
        let mut ctx = InferContext::new(&m, VotingConfig::best_averaged(), 3);
        let mixed = ensemble.estimate(&mut ctx, &t);
        let mut ctx = InferContext::new(&m, VotingConfig::best_averaged(), 3);
        let alone = IndependentBaseline.estimate(&mut ctx, &t);
        for (a, b) in mixed.probs.iter().zip(&alone.probs) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn single_voting_member_is_skipped_on_multi_missing_tuples() {
        let m = model();
        // single-voting alone would panic on a two-missing tuple; inside
        // the ensemble it must be skipped and the rest renormalized.
        let ensemble = EnsembleEngine::new(
            vec![Box::new(SingleVoting), Box::new(IndependentBaseline)],
            vec![0.7, 0.3],
        )
        .unwrap();
        let t = PartialTuple::from_options(&[None, None, Some(0), Some(1)]);
        let mut ctx = InferContext::new(&m, VotingConfig::best_averaged(), 3);
        let est = ensemble.estimate(&mut ctx, &t);
        assert!((est.probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Only the baseline contributed, so the mixture equals it.
        let mut ctx = InferContext::new(&m, VotingConfig::best_averaged(), 3);
        ctx.set_seed(derive_seed(3, &[1]));
        let alone = IndependentBaseline.estimate(&mut ctx, &t);
        for (a, b) in est.probs.iter().zip(&alone.probs) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn bad_ensembles_are_typed_errors() {
        assert_eq!(
            EnsembleEngine::uniform(vec![]).unwrap_err(),
            LearnError::NoMembers
        );
        let e = EnsembleEngine::new(vec![Box::new(SingleVoting)], vec![0.5, 0.5]).unwrap_err();
        assert!(matches!(e, LearnError::WeightCountMismatch { .. }));
        let e = EnsembleEngine::new(vec![Box::new(SingleVoting)], vec![-1.0]).unwrap_err();
        assert_eq!(e, LearnError::BadWeights);
        let e = EnsembleEngine::new(vec![Box::new(SingleVoting)], vec![0.0]).unwrap_err();
        assert_eq!(e, LearnError::BadWeights);
    }

    #[test]
    fn all_strategies_fit_normalized_weights() {
        for strategy in [
            WeightStrategy::Likelihood,
            WeightStrategy::Em {
                max_iters: 100,
                tol: 1e-9,
            },
            WeightStrategy::Stacking {
                folds: 4,
                pseudocount: 0.01,
            },
        ] {
            let (engine, report) = fit(strategy, 11);
            assert_eq!(report.weights.len(), 4);
            assert!((report.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(report.weights.iter().all(|&w| w >= 0.0));
            assert_eq!(engine.weights(), report.weights.as_slice());
            assert_eq!(
                report.members,
                vec!["single-voting", "gibbs", "independent", "tuple-dag"]
            );
            assert!(report.instances > 0);
            assert!((0.0..=1.0).contains(&report.ensemble_accuracy));
            if matches!(strategy, WeightStrategy::Em { .. }) {
                // EM starts at uniform and ascends the held-out mixture
                // likelihood monotonically.
                assert!(
                    report.ensemble_log_likelihood >= report.uniform_log_likelihood - 1e-9,
                    "EM mixture LL {} below uniform {}",
                    report.ensemble_log_likelihood,
                    report.uniform_log_likelihood
                );
            }
        }
    }

    #[test]
    fn em_weights_are_bit_identical_across_thread_pools() {
        let strategy = WeightStrategy::Em {
            max_iters: 60,
            tol: 1e-12,
        };
        let runs: Vec<Vec<u64>> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap()
                    .install(|| {
                        let (_, report) = fit(strategy, 17);
                        report.weights.iter().map(|w| w.to_bits()).collect()
                    })
            })
            .collect();
        assert_eq!(runs[0], runs[1], "1 vs 2 threads");
        assert_eq!(runs[0], runs[2], "1 vs 8 threads");
    }

    #[test]
    fn likelihood_weights_track_member_quality() {
        let (_, report) = fit(WeightStrategy::Likelihood, 23);
        // The best-scoring member by log-likelihood gets the largest
        // weight — softmax is monotone in LL.
        let best_ll = argmax(&report.log_likelihoods);
        let best_w = argmax(&report.weights);
        assert_eq!(best_ll, best_w);
        // Learned weights do not lose held-out accuracy vs uniform voting.
        assert!(report.ensemble_accuracy >= report.uniform_accuracy - 1e-9);
    }

    #[test]
    fn digest_and_description_depend_on_weights() {
        let a = EnsembleEngine::new(
            vec![Box::new(SingleVoting), Box::new(IndependentBaseline)],
            vec![0.5, 0.5],
        )
        .unwrap();
        let b = EnsembleEngine::new(
            vec![Box::new(SingleVoting), Box::new(IndependentBaseline)],
            vec![0.9, 0.1],
        )
        .unwrap();
        assert_ne!(a.weights_digest(), b.weights_digest());
        assert_eq!(a.weights_digest(), a.weights_digest());
        assert!(a.describe().starts_with("ensemble[single-voting:0.500"));
        assert!(a
            .describe()
            .contains(&format!("{:016x}", a.weights_digest())));
    }

    #[test]
    fn ensemble_drives_the_full_derivation_path() {
        use mrsl_core::{derive_probabilistic_db_with_engine, DeriveConfig};

        let rel = fig1_relation();
        let config = DeriveConfig {
            gibbs: quick_gibbs(),
            seed: 7,
            ..DeriveConfig::default()
        };
        let ensemble = EnsembleEngine::standard(&quick_gibbs());
        let out = derive_probabilistic_db_with_engine(&rel, &config, &ensemble);
        assert_eq!(out.db.provenance(), Some("ensemble"));
        assert_eq!(out.db.certain().len(), rel.complete_part().len());
        assert!(!out.db.blocks().is_empty());
        for b in out.db.blocks() {
            let sum: f64 = b.alternatives().iter().map(|a| a.prob).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn fitting_requires_holdout_and_members() {
        let m = model();
        let e = fit_ensemble_weights(
            &m,
            &[],
            VotingConfig::best_averaged(),
            standard_members(&quick_gibbs()),
            WeightStrategy::Likelihood,
            0,
        )
        .unwrap_err();
        assert_eq!(e, LearnError::NoHoldout);
        let rel = fig1_relation();
        let e = fit_ensemble_weights(
            &m,
            rel.complete_part(),
            VotingConfig::best_averaged(),
            vec![],
            WeightStrategy::Likelihood,
            0,
        )
        .unwrap_err();
        assert_eq!(e, LearnError::NoMembers);
        let e = fit_ensemble_weights(
            &m,
            &rel.complete_part()[..1],
            VotingConfig::best_averaged(),
            standard_members(&quick_gibbs()),
            WeightStrategy::Stacking {
                folds: 100,
                pseudocount: 0.0,
            },
            0,
        )
        .unwrap_err();
        assert!(matches!(e, LearnError::BadFolds { .. }));
    }
}
