//! Learning on top of the derivation pipeline.
//!
//! The paper derives every tuple's `Δt` from one fixed inference strategy;
//! this crate learns two things the paper leaves open:
//!
//! * [`ensemble`] — **weighted inference ensembles**: an
//!   [`EnsembleEngine`] mixes the four existing engines (`single-voting`,
//!   `gibbs`, `independent`, `tuple-dag`) under per-engine weights, and
//!   [`fit_ensemble_weights`] learns those weights on held-out observed
//!   tuples by total likelihood, EM over per-instance responsibilities, or
//!   k-fold stacking. The fitted engine is a drop-in
//!   [`InferenceEngine`](mrsl_core::InferenceEngine), so it drives the
//!   whole derivation path through
//!   [`derive_probabilistic_db_with_engine`](mrsl_core::derive_probabilistic_db_with_engine)
//!   and the lazy `*_with_engine` variants.
//! * [`optimize`] — **tuple-probability learning**: [`fit_block_masses`]
//!   adjusts the block-alternative masses of a derived catalog to fit
//!   labeled query answers, descending the exact safe-plan gradients of
//!   [`CatalogEngine::probability_with_gradient`](mrsl_probdb::CatalogEngine::probability_with_gradient)
//!   with an Adam step projected back onto each block's probability
//!   simplex, and reports per-epoch train/validation loss.

pub mod ensemble;
pub mod optimize;

pub use ensemble::{
    fit_ensemble_weights, standard_members, EnsembleEngine, EnsembleFitReport, LearnError,
    WeightStrategy,
};
pub use optimize::{fit_block_masses, LabeledQuery, MassFitConfig, MassFitReport};
