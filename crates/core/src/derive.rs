//! End-to-end derivation of a probabilistic database (the paper's title).
//!
//! Ties the phases together: learn the MRSL model from `Rc`, estimate `Δt`
//! for every incomplete tuple in `Ri` (single-attribute voting when one
//! value is missing, workload-driven Gibbs sampling otherwise), and emit a
//! disjoint-independent probabilistic database: the complete tuples are
//! certain, and each incomplete tuple becomes a block of mutually exclusive
//! completions weighted by `Δt`.

use crate::config::{GibbsConfig, LearnConfig, VotingConfig};
use crate::infer::batch::infer_batch;
use crate::infer::dag::{workload_engine, SamplingCost, WorkloadStrategy};
use crate::infer::engine::{InferenceEngine, SingleVoting};
use crate::infer::gibbs::JointEstimate;
use crate::model::MrslModel;
use mrsl_probdb::{Alternative, Block, ProbDb};
use mrsl_relation::{CompleteTuple, PartialTuple, Relation};
use mrsl_util::Stopwatch;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Configuration of the full derivation pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeriveConfig {
    /// Learning-phase parameters (Algorithm 1).
    pub learn: LearnConfig,
    /// Voting used for single-attribute inference and inside Gibbs.
    pub voting: VotingConfig,
    /// Gibbs parameters for tuples with multiple missing values.
    pub gibbs: GibbsConfig,
    /// Workload strategy for multi-attribute tuples.
    pub strategy: WorkloadStrategy,
    /// Completions with estimated probability below this are dropped from
    /// the emitted block (the rest renormalize). 0 keeps everything with
    /// non-zero mass.
    pub min_block_prob: f64,
    /// Master seed for the sampling phase.
    pub seed: u64,
}

impl Default for DeriveConfig {
    fn default() -> Self {
        Self {
            learn: LearnConfig::default(),
            voting: VotingConfig::best_averaged(),
            gibbs: GibbsConfig::default(),
            strategy: WorkloadStrategy::TupleDag,
            min_block_prob: 0.0,
            seed: 0,
        }
    }
}

/// Output of [`derive_probabilistic_db`].
#[derive(Debug)]
pub struct DeriveOutput {
    /// The derived disjoint-independent database.
    pub db: ProbDb,
    /// The learned model (reusable for further inference).
    pub model: MrslModel,
    /// Per-incomplete-tuple estimates, aligned with
    /// `relation.incomplete_part()`.
    pub estimates: Vec<JointEstimate>,
    /// Cost of the multi-attribute sampling phase.
    pub sampling_cost: SamplingCost,
    /// Wall-clock time of the whole derivation.
    pub elapsed: Duration,
}

/// Runs the full pipeline on `relation`.
///
/// Single-missing-value tuples use Algorithm 2 directly (their `Δt` *is*
/// the voted CPD); tuples with two or more missing values go through the
/// strategy's workload engine. Both partitions run on the shared rayon
/// batch executor ([`infer_batch`]) with deterministic per-tuple seeding,
/// so the output is identical for any worker-thread count.
pub fn derive_probabilistic_db(relation: &Relation, config: &DeriveConfig) -> DeriveOutput {
    let engine = workload_engine(config.strategy, &config.gibbs);
    derive_probabilistic_db_with_engine(relation, config, engine.as_ref())
}

/// [`derive_probabilistic_db`] with an explicit multi-attribute engine.
///
/// `config.strategy` is ignored: every tuple with two or more missing
/// values goes through `engine` instead of the strategy's workload engine
/// (single-missing tuples still use Algorithm 2 directly). This is how a
/// learned [`InferenceEngine`] — e.g. `mrsl_learn`'s weighted ensemble —
/// drives the whole derivation path. The emitted database records
/// `engine.name()` as its provenance
/// ([`ProbDb::provenance`](mrsl_probdb::ProbDb::provenance)).
pub fn derive_probabilistic_db_with_engine(
    relation: &Relation,
    config: &DeriveConfig,
    engine: &dyn InferenceEngine,
) -> DeriveOutput {
    let sw = Stopwatch::start();
    let schema = relation.schema();
    let model = MrslModel::learn(schema, relation.complete_part(), &config.learn);

    // Partition Ri by number of missing values.
    let incomplete = relation.incomplete_part();
    let mut estimates: Vec<Option<JointEstimate>> = vec![None; incomplete.len()];
    let mut single_workload: Vec<PartialTuple> = Vec::new();
    let mut single_slots: Vec<usize> = Vec::new();
    let mut multi_workload: Vec<PartialTuple> = Vec::new();
    let mut multi_slots: Vec<usize> = Vec::new();
    for (i, t) in incomplete.iter().enumerate() {
        if t.missing_mask().count() <= 1 {
            single_workload.push(t.clone());
            single_slots.push(i);
        } else {
            multi_workload.push(t.clone());
            multi_slots.push(i);
        }
    }

    if !single_workload.is_empty() {
        let result = infer_batch(
            &model,
            &single_workload,
            &SingleVoting,
            config.voting,
            config.seed,
        );
        for (slot, est) in single_slots.into_iter().zip(result.estimates) {
            estimates[slot] = Some(est);
        }
    }

    let mut sampling_cost = SamplingCost::default();
    if !multi_workload.is_empty() {
        let result = infer_batch(
            &model,
            &multi_workload,
            engine,
            config.gibbs.voting,
            config.seed,
        );
        sampling_cost = result.cost;
        for (slot, est) in multi_slots.into_iter().zip(result.estimates) {
            estimates[slot] = Some(est);
        }
    }
    let estimates: Vec<JointEstimate> = estimates
        .into_iter()
        .map(|e| e.expect("every incomplete tuple received an estimate"))
        .collect();

    // Assemble the probabilistic database.
    let mut db = ProbDb::new(schema.clone());
    db.set_provenance(engine.name());
    for point in relation.complete_part() {
        db.push_certain(point.clone())
            .expect("schema arity verified by the relation");
    }
    for (key, (t, est)) in incomplete.iter().zip(&estimates).enumerate() {
        let block = estimate_to_block(key, t, est, config.min_block_prob);
        db.push_block(block).expect("blocks validated on build");
    }

    DeriveOutput {
        db,
        model,
        estimates,
        sampling_cost,
        elapsed: sw.elapsed(),
    }
}

/// Converts `Δt` into a block of complete alternatives.
pub(crate) fn estimate_to_block(
    key: usize,
    t: &PartialTuple,
    est: &JointEstimate,
    min_prob: f64,
) -> Block {
    let arity = t.arity();
    let mut alternatives = Vec::new();
    for (idx, &p) in est.probs.iter().enumerate() {
        if p <= min_prob || p <= 0.0 {
            continue;
        }
        let mut values = vec![0u16; arity];
        for asg in t.assignments() {
            values[asg.attr.index()] = asg.value.0;
        }
        for (attr, v) in est.indexer.decode(idx) {
            values[attr.index()] = v.0;
        }
        alternatives.push(Alternative {
            tuple: CompleteTuple::from_values(values),
            prob: p,
        });
    }
    if alternatives.is_empty() {
        // Pruning removed everything (extreme min_prob): fall back to the
        // most probable completion with probability 1.
        let best = est.top1();
        let mut values = vec![0u16; arity];
        for asg in t.assignments() {
            values[asg.attr.index()] = asg.value.0;
        }
        for (attr, v) in est.indexer.decode(best) {
            values[attr.index()] = v.0;
        }
        alternatives.push(Alternative {
            tuple: CompleteTuple::from_values(values),
            prob: 1.0,
        });
    }
    Block::normalized(key, alternatives).expect("non-empty alternatives")
}

/// Re-export used by `estimate_to_block` tests.
pub use crate::infer::dag::WorkloadStrategy as Strategy;

#[cfg(test)]
mod tests {
    use super::*;
    use mrsl_relation::relation::fig1_relation;
    use mrsl_relation::AttrId;

    fn quick_config() -> DeriveConfig {
        DeriveConfig {
            learn: LearnConfig {
                support_threshold: 0.01,
                max_itemsets: 1000,
            },
            gibbs: GibbsConfig {
                burn_in: 30,
                samples: 300,
                voting: VotingConfig::best_averaged(),
            },
            ..DeriveConfig::default()
        }
    }

    #[test]
    fn derives_block_per_incomplete_tuple() {
        let rel = fig1_relation();
        let out = derive_probabilistic_db(&rel, &quick_config());
        assert_eq!(out.db.certain().len(), 8);
        assert_eq!(out.db.blocks().len(), 9);
        assert_eq!(out.estimates.len(), 9);
        // Every block's alternatives agree with its source tuple's
        // observed values.
        for (block, t) in out.db.blocks().iter().zip(rel.incomplete_part()) {
            for alt in block.alternatives() {
                assert!(t.matches_point(&alt.tuple));
            }
            let total: f64 = block.alternatives().iter().map(|a| a.prob).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn single_missing_tuples_use_voting_not_sampling() {
        let rel = fig1_relation();
        let out = derive_probabilistic_db(&rel, &quick_config());
        // t3 = ⟨20, ?, 50K, ?⟩ has two missing; t16 = ⟨40, HS, ?, 500K⟩ one.
        let t16_idx = rel
            .incomplete_part()
            .iter()
            .position(|t| t.missing_mask().count() == 1)
            .expect("fig1 has single-missing tuples");
        assert_eq!(out.estimates[t16_idx].sample_count, 0, "exact, not sampled");
        let multi_idx = rel
            .incomplete_part()
            .iter()
            .position(|t| t.missing_mask().count() >= 2)
            .unwrap();
        assert!(out.estimates[multi_idx].sample_count > 0);
    }

    #[test]
    fn derived_db_answers_queries() {
        use mrsl_probdb::query::{expected_count, Predicate};
        let rel = fig1_relation();
        let out = derive_probabilistic_db(&rel, &quick_config());
        // Expected number of profiles with age=20 lies between the certain
        // matches (4) and certain + all possibly-20 blocks.
        let pred = Predicate::any().and_eq(AttrId(0), mrsl_relation::ValueId(0));
        let e = expected_count(&out.db, &pred);
        assert!((4.0..=4.0 + 9.0).contains(&e), "expected count {e}");
        // Tuples observed as age=20 contribute ~1 each: t1, t3, t5 are
        // age=20 blocks.
        assert!(e > 6.5, "expected count {e}");
    }

    #[test]
    fn min_block_prob_prunes_alternatives() {
        let rel = fig1_relation();
        let loose = derive_probabilistic_db(&rel, &quick_config());
        let mut strict_cfg = quick_config();
        strict_cfg.min_block_prob = 0.2;
        let strict = derive_probabilistic_db(&rel, &strict_cfg);
        assert!(strict.db.alternative_count() <= loose.db.alternative_count());
        for block in strict.db.blocks() {
            let total: f64 = block.alternatives().iter().map(|a| a.prob).sum();
            assert!((total - 1.0).abs() < 1e-9, "pruned blocks renormalize");
        }
    }

    #[test]
    fn derivation_is_deterministic() {
        let rel = fig1_relation();
        let a = derive_probabilistic_db(&rel, &quick_config());
        let b = derive_probabilistic_db(&rel, &quick_config());
        for (ea, eb) in a.estimates.iter().zip(&b.estimates) {
            assert_eq!(ea.probs, eb.probs);
        }
    }

    #[test]
    fn relation_without_incomplete_tuples_yields_certain_db() {
        let rel = fig1_relation();
        let mut complete_only = Relation::new(rel.schema().clone());
        for p in rel.complete_part() {
            complete_only.push_complete(p.clone()).unwrap();
        }
        let out = derive_probabilistic_db(&complete_only, &quick_config());
        assert_eq!(out.db.blocks().len(), 0);
        assert_eq!(out.db.world_count(), 1);
        assert_eq!(out.sampling_cost.total_draws, 0);
    }
}
