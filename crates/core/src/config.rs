//! Configuration types shared by learning and inference.

use mrsl_itemset::AprioriConfig;
use serde::{Deserialize, Serialize};

/// Learning-phase parameters of Algorithm 1.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LearnConfig {
    /// Support threshold θ for frequent itemset mining.
    pub support_threshold: f64,
    /// Level cap `maxItemsets` (paper default: 1000).
    pub max_itemsets: usize,
}

impl Default for LearnConfig {
    fn default() -> Self {
        Self {
            support_threshold: 0.01,
            max_itemsets: 1000,
        }
    }
}

impl LearnConfig {
    /// The equivalent miner configuration.
    pub fn apriori(&self) -> AprioriConfig {
        AprioriConfig {
            support_threshold: self.support_threshold,
            max_itemsets: self.max_itemsets,
        }
    }
}

/// Voter selection mechanism `vChoice` of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VoterChoice {
    /// Use every matching meta-rule.
    All,
    /// Use only the most specific matches — those that do not subsume any
    /// other match.
    Best,
}

/// Voting scheme `vScheme` of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VotingScheme {
    /// Plain position-wise average of the voters' CPDs.
    Averaged,
    /// Weighted average, with each meta-rule's support as its weight.
    Weighted,
}

/// A voter-choice / voting-scheme pair; the paper evaluates all four
/// combinations in Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VotingConfig {
    /// Which meta-rules vote.
    pub choice: VoterChoice,
    /// How the votes are combined.
    pub scheme: VotingScheme,
}

impl VotingConfig {
    /// `best averaged` — the paper's most accurate setting at scale.
    pub fn best_averaged() -> Self {
        Self {
            choice: VoterChoice::Best,
            scheme: VotingScheme::Averaged,
        }
    }

    /// `best weighted`.
    pub fn best_weighted() -> Self {
        Self {
            choice: VoterChoice::Best,
            scheme: VotingScheme::Weighted,
        }
    }

    /// `all averaged`.
    pub fn all_averaged() -> Self {
        Self {
            choice: VoterChoice::All,
            scheme: VotingScheme::Averaged,
        }
    }

    /// `all weighted`.
    pub fn all_weighted() -> Self {
        Self {
            choice: VoterChoice::All,
            scheme: VotingScheme::Weighted,
        }
    }

    /// All four combinations, in the column order of Table II.
    pub fn table2_order() -> [VotingConfig; 4] {
        [
            Self::all_averaged(),
            Self::all_weighted(),
            Self::best_averaged(),
            Self::best_weighted(),
        ]
    }

    /// Short display name as used in the paper's tables ("best averaged" …).
    pub fn label(&self) -> &'static str {
        match (self.choice, self.scheme) {
            (VoterChoice::All, VotingScheme::Averaged) => "all averaged",
            (VoterChoice::All, VotingScheme::Weighted) => "all weighted",
            (VoterChoice::Best, VotingScheme::Averaged) => "best averaged",
            (VoterChoice::Best, VotingScheme::Weighted) => "best weighted",
        }
    }
}

impl Default for VotingConfig {
    fn default() -> Self {
        Self::best_averaged()
    }
}

/// Gibbs sampling parameters (§V-A): burn-in length `B` and recorded
/// samples `N`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GibbsConfig {
    /// Sweeps discarded before recording (`B`).
    pub burn_in: usize,
    /// Recorded sweeps per tuple (`N`).
    pub samples: usize,
    /// Voting configuration used for the per-attribute CPDs inside the
    /// sampler.
    pub voting: VotingConfig,
}

impl Default for GibbsConfig {
    fn default() -> Self {
        Self {
            burn_in: 100,
            samples: 2000,
            voting: VotingConfig::best_averaged(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_order_matches_paper_columns() {
        let labels: Vec<&str> = VotingConfig::table2_order()
            .iter()
            .map(|v| v.label())
            .collect();
        assert_eq!(
            labels,
            vec![
                "all averaged",
                "all weighted",
                "best averaged",
                "best weighted"
            ]
        );
    }

    #[test]
    fn defaults_are_papers_best() {
        let v = VotingConfig::default();
        assert_eq!(v.choice, VoterChoice::Best);
        assert_eq!(v.scheme, VotingScheme::Averaged);
        let g = GibbsConfig::default();
        assert_eq!(g.samples, 2000); // "about 2000 sampling points per tuple"
        let l = LearnConfig::default();
        assert_eq!(l.max_itemsets, 1000);
    }

    #[test]
    fn learn_config_converts_to_apriori() {
        let l = LearnConfig {
            support_threshold: 0.05,
            max_itemsets: 42,
        };
        let a = l.apriori();
        assert_eq!(a.support_threshold, 0.05);
        assert_eq!(a.max_itemsets, 42);
    }
}
