//! Lazy, query-targeted derivation (the paper's §VIII future work).
//!
//! "Our approach opens new possibilities for partial materialization of
//! probability values, as well as for lazy, query-targeted learning and
//! inference." Instead of materializing `Δt` for *every* incomplete tuple,
//! [`derive_for_query`] derives blocks only for the tuples that can affect
//! a given selection predicate. The triage runs on the predicate algebra's
//! three-valued evaluation ([`Predicate::eval_partial`]): a tuple's block
//! is skippable iff the predicate is **decided by the observed
//! attributes** alone —
//!
//! * `Some(false)`: every completion violates the predicate — selection
//!   probability 0, no inference spent;
//! * `Some(true)`: every completion satisfies it — probability 1, no
//!   inference either (e.g. an `Or` with one observed-true arm skips
//!   inference even when other arms touch missing attributes);
//! * `None`: the outcome depends on missing attributes — infer `Δt` and
//!   marginalize it through the predicate.
//!
//! The result reports the exact per-tuple selection probabilities and the
//! expected count, plus how much inference work was skipped.

use crate::config::GibbsConfig;
use crate::derive::estimate_to_block;
use crate::infer::batch::infer_batch;
use crate::infer::dag::{workload_engine, SamplingCost, WorkloadStrategy};
use crate::infer::engine::InferenceEngine;
use crate::model::MrslModel;
use mrsl_probdb::query::Predicate;
use mrsl_probdb::{Catalog, ProbDb, ProbDbError, Query};
use mrsl_relation::{CompleteTuple, PartialTuple, Relation};
use serde::{Deserialize, Serialize};

/// Why a tuple did or did not need inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LazyDisposition {
    /// The observed portion contradicts the predicate: probability 0.
    RuledOut,
    /// The observed portion satisfies the predicate: probability 1.
    Certain,
    /// The predicate depends on missing attributes: inferred probability.
    Inferred,
}

/// Per-incomplete-tuple result of a lazy query derivation.
#[derive(Debug, Clone)]
pub struct LazySelection {
    /// How the tuple was handled.
    pub disposition: LazyDisposition,
    /// Probability the tuple satisfies the predicate.
    pub prob: f64,
}

/// Output of [`derive_for_query`].
#[derive(Debug)]
pub struct LazyQueryOutput {
    /// One entry per tuple of `relation.incomplete_part()`.
    pub selections: Vec<LazySelection>,
    /// Number of certain (complete) tuples satisfying the predicate.
    pub certain_matches: usize,
    /// Expected number of tuples satisfying the predicate, over the whole
    /// relation (certain matches + block probabilities).
    pub expected_count: f64,
    /// Cost of the sampling actually performed.
    pub sampling_cost: SamplingCost,
    /// Tuples whose inference was skipped thanks to laziness.
    pub skipped: usize,
}

/// Evaluates `P(t satisfies pred)` for every tuple of `relation`, deriving
/// distributions **only where the predicate requires them**. Works for the
/// whole predicate algebra (`Eq`/`In`/`Range`/`And`/`Or`/`Not`).
pub fn derive_for_query(
    relation: &Relation,
    model: &MrslModel,
    pred: &Predicate,
    gibbs: &GibbsConfig,
    strategy: WorkloadStrategy,
    seed: u64,
) -> LazyQueryOutput {
    let engine = workload_engine(strategy, gibbs);
    derive_for_query_with_engine(relation, model, pred, gibbs, engine.as_ref(), seed)
}

/// [`derive_for_query`] with an explicit inference engine for the
/// undecided tuples (instead of a [`WorkloadStrategy`]'s workload engine).
pub fn derive_for_query_with_engine(
    relation: &Relation,
    model: &MrslModel,
    pred: &Predicate,
    gibbs: &GibbsConfig,
    engine: &dyn InferenceEngine,
    seed: u64,
) -> LazyQueryOutput {
    let certain_matches = relation
        .complete_part()
        .iter()
        .filter(|t| pred.eval(t))
        .count();

    // Triage incomplete tuples on the observed attributes alone.
    let incomplete = relation.incomplete_part();
    let mut selections: Vec<Option<LazySelection>> = vec![None; incomplete.len()];
    let mut workload: Vec<PartialTuple> = Vec::new();
    let mut slots: Vec<usize> = Vec::new();
    for (i, t) in incomplete.iter().enumerate() {
        match pred.eval_partial(t) {
            Some(false) => {
                selections[i] = Some(LazySelection {
                    disposition: LazyDisposition::RuledOut,
                    prob: 0.0,
                });
            }
            Some(true) => {
                selections[i] = Some(LazySelection {
                    disposition: LazyDisposition::Certain,
                    prob: 1.0,
                });
            }
            None => {
                workload.push(t.clone());
                slots.push(i);
            }
        }
    }
    let skipped = incomplete.len() - workload.len();

    // Infer Δt only for the undecided tuples, then push each joint
    // combination through the predicate: P(pred) = Σ p(combo) over the
    // combinations whose completion satisfies it.
    let mut sampling_cost = SamplingCost::default();
    if !workload.is_empty() {
        let result = infer_batch(model, &workload, engine, gibbs.voting, seed);
        sampling_cost = result.cost;
        for ((slot, t), est) in slots.iter().zip(&workload).zip(&result.estimates) {
            let mut prob = 0.0;
            for (idx, &p) in est.probs.iter().enumerate() {
                let combo = est.indexer.decode(idx);
                if pred.eval(&t.complete_with_assignments(&combo)) {
                    prob += p;
                }
            }
            selections[*slot] = Some(LazySelection {
                disposition: LazyDisposition::Inferred,
                prob,
            });
        }
    }

    let selections: Vec<LazySelection> = selections
        .into_iter()
        .map(|s| s.expect("every tuple classified"))
        .collect();
    let expected_count = certain_matches as f64 + selections.iter().map(|s| s.prob).sum::<f64>();
    LazyQueryOutput {
        selections,
        certain_matches,
        expected_count,
        sampling_cost,
        skipped,
    }
}

/// One source relation of a lazy catalog derivation: the raw (partially
/// incomplete) relation plus the model learned from its complete part.
#[derive(Debug, Clone, Copy)]
pub struct LazySource<'a> {
    /// Catalog name the query's scans refer to.
    pub name: &'a str,
    /// The source relation (complete + incomplete tuples).
    pub relation: &'a Relation,
    /// The MRSL model used to infer `Δt` for this relation.
    pub model: &'a MrslModel,
}

/// Per-relation derivation statistics of [`derive_catalog_for_query`].
#[derive(Debug, Clone)]
pub struct LazyRelationStats {
    /// Relation name.
    pub relation: String,
    /// Incomplete tuples whose observed values contradict the query's
    /// selection: omitted entirely, no inference, no block.
    pub ruled_out: usize,
    /// Incomplete tuples the query is already decided on (selection
    /// observed true, every join key observed): materialized without
    /// inference.
    pub pinned: usize,
    /// Incomplete tuples that needed `Δt` inference.
    pub inferred: usize,
    /// Cost of the sampling actually performed for this relation.
    pub sampling_cost: SamplingCost,
}

/// Output of [`derive_catalog_for_query`].
#[derive(Debug)]
pub struct LazyCatalogOutput {
    /// The derived catalog, ready for
    /// [`CatalogEngine`](mrsl_probdb::CatalogEngine).
    pub catalog: Catalog,
    /// Per-relation triage statistics, in query scan order.
    pub per_relation: Vec<LazyRelationStats>,
}

/// Derives a query-targeted [`Catalog`]: for every relation the `query`
/// scans, infers `Δt` **only** for the incomplete tuples the query
/// actually depends on.
///
/// The triage extends [`derive_for_query`] per relation with join
/// awareness (via [`Query::scan_requirements`]):
///
/// * selection observed-false → the tuple can never satisfy its scan's
///   predicate; it is omitted (no inference, no block);
/// * selection observed-true **and** every join attribute observed → the
///   tuple's effect on the query is fully determined; it is pinned as a
///   certain tuple (missing non-query attributes default to value 0), no
///   inference;
/// * otherwise → `Δt` is inferred and the tuple becomes a regular block.
///
/// The resulting catalog is **valid only for this query's
/// probability/count statistics** (`Probability`, `ExpectedCount`,
/// `CountDistribution`): those read nothing beyond the selection and join
/// attributes the triage conditions on. Statistics that read attribute
/// *values* out of the tuples — `ValueMarginal`, `TopK` — would see the
/// pinned tuples' zero-filled missing attributes as real data; use the
/// eager [`derive_probabilistic_db`](crate::derive_probabilistic_db) for
/// those, as for any unrelated query (omitted tuples are missing rows
/// there too). Sources the query does not scan are skipped.
pub fn derive_catalog_for_query(
    sources: &[LazySource<'_>],
    query: &Query,
    gibbs: &GibbsConfig,
    strategy: WorkloadStrategy,
    seed: u64,
) -> Result<LazyCatalogOutput, ProbDbError> {
    let engine = workload_engine(strategy, gibbs);
    derive_catalog_for_query_with_engine(sources, query, gibbs, engine.as_ref(), seed)
}

/// [`derive_catalog_for_query`] with an explicit inference engine for the
/// tuples that need `Δt`. Every derived relation records `engine.name()`
/// as its provenance, so [`EvalReport`](mrsl_probdb::EvalReport)s over the
/// catalog say which engine stood behind the blocks they read.
pub fn derive_catalog_for_query_with_engine(
    sources: &[LazySource<'_>],
    query: &Query,
    gibbs: &GibbsConfig,
    engine: &dyn InferenceEngine,
    seed: u64,
) -> Result<LazyCatalogOutput, ProbDbError> {
    let requirements = query.scan_requirements()?;
    let mut catalog = Catalog::new();
    let mut per_relation = Vec::with_capacity(requirements.len());
    for req in &requirements {
        let source = sources
            .iter()
            .find(|s| s.name == req.relation)
            .ok_or_else(|| ProbDbError::UnknownRelation(req.relation.clone()))?;
        let relation = source.relation;
        let mut db = ProbDb::new(relation.schema().clone());
        db.set_provenance(engine.name());
        for point in relation.complete_part() {
            db.push_certain(point.clone())
                .expect("schema arity verified by the relation");
        }

        // Triage: which incomplete tuples does this query actually need
        // derived?
        let incomplete = relation.incomplete_part();
        let mut stats = LazyRelationStats {
            relation: req.relation.clone(),
            ruled_out: 0,
            pinned: 0,
            inferred: 0,
            sampling_cost: SamplingCost::default(),
        };
        let mut workload: Vec<PartialTuple> = Vec::new();
        let mut keys: Vec<usize> = Vec::new();
        for (key, t) in incomplete.iter().enumerate() {
            // Pinning fabricates the missing attributes (zero-filled), so
            // it needs the tuple's whole effect on the query decided:
            // *every* scan's selection individually (Kleene's OR in
            // `req.pred` can be true while one alias still hinges on an
            // unobserved attribute) plus all join keys observed.
            let decided_everywhere = || {
                req.join_attrs.is_subset(t.mask())
                    && req.scan_preds.iter().all(|p| p.eval_partial(t).is_some())
            };
            match req.pred.eval_partial(t) {
                Some(false) => stats.ruled_out += 1,
                Some(true) if decided_everywhere() => {
                    stats.pinned += 1;
                    let values = (0..t.arity() as u16)
                        .map(|a| t.get(mrsl_relation::AttrId(a)).map(|v| v.0).unwrap_or(0))
                        .collect();
                    db.push_certain(CompleteTuple::from_values(values))
                        .expect("arity matches the schema");
                }
                _ => {
                    workload.push(t.clone());
                    keys.push(key);
                }
            }
        }
        stats.inferred = workload.len();
        if !workload.is_empty() {
            let result = infer_batch(source.model, &workload, engine, gibbs.voting, seed);
            stats.sampling_cost = result.cost;
            for ((key, t), est) in keys.iter().zip(&workload).zip(&result.estimates) {
                db.push_block(estimate_to_block(*key, t, est, 0.0))
                    .expect("blocks validated on build");
            }
        }
        catalog.add(req.relation.clone(), db)?;
        per_relation.push(stats);
    }
    Ok(LazyCatalogOutput {
        catalog,
        per_relation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LearnConfig, VotingConfig};
    use crate::derive::{derive_probabilistic_db, DeriveConfig};
    use mrsl_probdb::query::expected_count;
    use mrsl_relation::relation::fig1_relation;
    use mrsl_relation::{AttrId, ValueId};

    fn setup() -> (Relation, MrslModel, GibbsConfig) {
        let rel = fig1_relation();
        let learn = LearnConfig {
            support_threshold: 0.01,
            max_itemsets: 1000,
        };
        let model = MrslModel::learn(rel.schema(), rel.complete_part(), &learn);
        let gibbs = GibbsConfig {
            burn_in: 50,
            samples: 600,
            voting: VotingConfig::best_averaged(),
        };
        (rel, model, gibbs)
    }

    #[test]
    fn classifies_tuples_correctly() {
        let (rel, model, gibbs) = setup();
        // pred: age = 30. Incomplete tuples with age observed ≠ 30 are
        // ruled out; with age = 30 observed they're certain; with age
        // missing they need inference.
        let pred = Predicate::any().and_eq(AttrId(0), ValueId(1));
        let out = derive_for_query(&rel, &model, &pred, &gibbs, WorkloadStrategy::TupleDag, 1);
        assert_eq!(out.selections.len(), 9);
        // t8 = ⟨?, HS, ?, ?⟩ is the only tuple with age missing.
        let inferred = out
            .selections
            .iter()
            .filter(|s| s.disposition == LazyDisposition::Inferred)
            .count();
        assert_eq!(inferred, 1);
        let certain = out
            .selections
            .iter()
            .filter(|s| s.disposition == LazyDisposition::Certain)
            .count();
        assert_eq!(certain, 3); // t10, t11, t12 observe age = 30
        assert_eq!(out.skipped, 8);
        // Certain complete matches: age=30 points are t9 only.
        assert_eq!(out.certain_matches, 1);
    }

    #[test]
    fn lazy_matches_full_materialization() {
        let (rel, model, gibbs) = setup();
        let pred = Predicate::any().and_eq(AttrId(2), ValueId(1)); // inc=100K
        let lazy = derive_for_query(&rel, &model, &pred, &gibbs, WorkloadStrategy::TupleDag, 1);
        // Fully materialize with the same parameters and compare.
        let full = derive_probabilistic_db(
            &rel,
            &DeriveConfig {
                learn: LearnConfig {
                    support_threshold: 0.01,
                    max_itemsets: 1000,
                },
                gibbs,
                seed: 1,
                ..DeriveConfig::default()
            },
        );
        let full_expected = expected_count(&full.db, &pred);
        assert!(
            (lazy.expected_count - full_expected).abs() < 0.6,
            "lazy {} vs full {}",
            lazy.expected_count,
            full_expected
        );
    }

    #[test]
    fn lazy_saves_inference_work() {
        let (rel, model, gibbs) = setup();
        // A very selective predicate on observed values skips most tuples.
        let pred = Predicate::any()
            .and_eq(AttrId(0), ValueId(1))
            .and_eq(AttrId(1), ValueId(2)); // age=30 ∧ edu=MS: only t12 certain
        let out = derive_for_query(&rel, &model, &pred, &gibbs, WorkloadStrategy::TupleDag, 1);
        assert!(out.skipped >= 7, "skipped {}", out.skipped);
        assert_eq!(out.sampling_cost.chains, 1); // only t8 needs sampling
                                                 // t12 observes both clauses: probability exactly 1.
        assert!(out
            .selections
            .iter()
            .any(|s| s.disposition == LazyDisposition::Certain && s.prob == 1.0));
    }

    #[test]
    fn empty_predicate_is_all_certain() {
        let (rel, model, gibbs) = setup();
        let out = derive_for_query(
            &rel,
            &model,
            &Predicate::any(),
            &gibbs,
            WorkloadStrategy::TupleDag,
            1,
        );
        assert!(out
            .selections
            .iter()
            .all(|s| s.disposition == LazyDisposition::Certain));
        assert_eq!(out.expected_count, rel.len() as f64);
        assert_eq!(out.sampling_cost.total_draws, 0);
    }

    #[test]
    fn disjunction_decided_by_observed_arm_skips_inference() {
        let (rel, model, gibbs) = setup();
        // edu=HS ∨ inc=100K: t1 = ⟨20, HS, ?, ?⟩ and t8 = ⟨?, HS, ?, ?⟩
        // observe the first arm, so no inference is needed on them even
        // though inc (and for t8 also age) is missing.
        let pred = Predicate::eq(AttrId(1), ValueId(0)).or(Predicate::eq(AttrId(2), ValueId(1)));
        let out = derive_for_query(&rel, &model, &pred, &gibbs, WorkloadStrategy::TupleDag, 1);
        // Incomplete part order: t1, t3, t5, t8, t10, t11, t12, t14, t16.
        for idx in [0usize, 3] {
            let s = &out.selections[idx];
            assert_eq!(s.disposition, LazyDisposition::Certain);
            assert_eq!(s.prob, 1.0);
        }
    }

    #[test]
    fn empty_conjunction_skips_all_inference() {
        // Regression (ROADMAP open item): `And([]) ≡ Any` must be decided
        // — `Some(true)` — on every incomplete tuple, so a query with an
        // empty conjunction derives nothing.
        let (rel, model, gibbs) = setup();
        let pred = Predicate::And(vec![]);
        let out = derive_for_query(&rel, &model, &pred, &gibbs, WorkloadStrategy::TupleDag, 1);
        assert!(out
            .selections
            .iter()
            .all(|s| s.disposition == LazyDisposition::Certain && s.prob == 1.0));
        assert_eq!(out.skipped, rel.incomplete_part().len());
        assert_eq!(out.sampling_cost.total_draws, 0);
        assert_eq!(out.expected_count, rel.len() as f64);
    }

    #[test]
    fn alias_merged_requirements_only_pin_fully_decided_tuples() {
        let (rel, model, gibbs) = setup();
        // σ[age=20](r1) ⋈ σ[inc=100K](r2) on age: the merged requirement
        // is (age=20 ∨ inc=100K). A tuple with age=20 observed but inc
        // missing satisfies Kleene's OR, yet r2's selection is undecided —
        // pinning it would fabricate inc=0 (50K). It must be inferred.
        let mut partners = Relation::new(rel.schema().clone());
        for values in [vec![0u16, 0, 1, 0], vec![1, 1, 1, 1], vec![2, 2, 0, 0]] {
            partners
                .push_complete(mrsl_relation::CompleteTuple::from_values(values))
                .unwrap();
        }
        // ⟨20, HS, ?, ?⟩: age observed (r1's filter true, join key known),
        // inc missing (r2's filter undecided) → inferred, never pinned.
        partners
            .push(PartialTuple::from_options(&[Some(0), Some(0), None, None]))
            .unwrap();
        // ⟨20, ?, 100K, ?⟩: both filters decided, join key observed →
        // pinned without inference.
        partners
            .push(PartialTuple::from_options(&[Some(0), None, Some(1), None]))
            .unwrap();
        // ⟨30, ?, 50K, ?⟩: both filters decided false → ruled out.
        partners
            .push(PartialTuple::from_options(&[Some(1), None, Some(0), None]))
            .unwrap();
        let query = Query::scan_as("partners", "r1")
            .filter(Predicate::any().and_eq(AttrId(0), ValueId(0)))
            .join_on(
                Query::scan_as("partners", "r2")
                    .filter(Predicate::any().and_eq(AttrId(2), ValueId(1))),
                [(AttrId(0), AttrId(0))],
            );
        let sources = [LazySource {
            name: "partners",
            relation: &partners,
            model: &model,
        }];
        let out = derive_catalog_for_query(&sources, &query, &gibbs, WorkloadStrategy::TupleDag, 1)
            .unwrap();
        // One requirement for the twice-scanned relation.
        assert_eq!(out.per_relation.len(), 1);
        let stats = &out.per_relation[0];
        assert_eq!(stats.inferred, 1, "undecided alias selection must infer");
        assert_eq!(stats.pinned, 1);
        assert_eq!(stats.ruled_out, 1);
    }

    #[test]
    fn catalog_derivation_triages_per_relation() {
        use mrsl_probdb::{CatalogEngine, EvalPath};
        use mrsl_relation::ValueId;

        let (profiles, model, gibbs) = setup();
        // A second relation over the same dictionaries: a few complete
        // partners plus incomplete ones.
        let mut partners = Relation::new(profiles.schema().clone());
        for values in [vec![0u16, 0, 1, 0], vec![1, 1, 1, 1], vec![2, 2, 0, 0]] {
            partners
                .push_complete(mrsl_relation::CompleteTuple::from_values(values))
                .unwrap();
        }
        // ⟨20, ?, 100K, ?⟩: selection (inc=100K) observed true, join key
        // (age) observed → pinned without inference.
        partners
            .push(PartialTuple::from_options(&[Some(0), None, Some(1), None]))
            .unwrap();
        // ⟨?, HS, 100K, ?⟩: join key missing → must be inferred.
        partners
            .push(PartialTuple::from_options(&[None, Some(0), Some(1), None]))
            .unwrap();
        // ⟨30, BS, 50K, ?⟩: selection observed false → ruled out.
        partners
            .push(PartialTuple::from_options(&[
                Some(1),
                Some(1),
                Some(0),
                None,
            ]))
            .unwrap();
        let partner_model = MrslModel::learn(
            partners.schema(),
            partners.complete_part(),
            &LearnConfig {
                support_threshold: 0.01,
                max_itemsets: 1000,
            },
        );

        // profiles ⨝ partners on age, selecting inc=100K partners.
        let inc_100k = Predicate::any().and_eq(AttrId(2), ValueId(1));
        let query = Query::scan("profiles").join_on(
            Query::scan("partners").filter(inc_100k.clone()),
            [(AttrId(0), AttrId(0))],
        );
        let sources = [
            LazySource {
                name: "profiles",
                relation: &profiles,
                model: &model,
            },
            LazySource {
                name: "partners",
                relation: &partners,
                model: &partner_model,
            },
        ];
        let out = derive_catalog_for_query(&sources, &query, &gibbs, WorkloadStrategy::TupleDag, 1)
            .unwrap();

        // Partner triage: exactly the shapes constructed above.
        let ps = &out.per_relation[1];
        assert_eq!(ps.relation, "partners");
        assert_eq!(ps.pinned, 1);
        assert_eq!(ps.inferred, 1);
        assert_eq!(ps.ruled_out, 1);
        let partners_db = out.catalog.get("partners").unwrap();
        assert_eq!(partners_db.blocks().len(), 1); // only the inferred tuple
        assert_eq!(partners_db.certain().len(), 4); // 3 complete + 1 pinned

        // Profile triage: no selection on profiles, so nothing is ruled
        // out, and tuples with the join key (age) observed need no
        // inference either — only age-missing tuples derive.
        let pf = &out.per_relation[0];
        assert_eq!(pf.ruled_out, 0);
        let age_missing = profiles
            .incomplete_part()
            .iter()
            .filter(|t| t.get(AttrId(0)).is_none())
            .count();
        assert_eq!(pf.inferred, age_missing);
        assert_eq!(pf.pinned, profiles.incomplete_part().len() - age_missing);

        // The catalog answers the join exactly (hierarchical, keys unique
        // per block since only age-observed tuples were pinned and the
        // inferred blocks condition on the predicate... unless inference
        // left the key open — then the planner reports it).
        let engine = CatalogEngine::new(&out.catalog);
        let (count, _) = engine.expected_count(&query).unwrap();
        assert!(count > 0.0, "some 100K partner pairs must exist: {count}");
        let (p, report) = engine.probability(&query).unwrap();
        assert!((0.0..=1.0 + 1e-9).contains(&p));
        // Blocks with the age key inferred straddle join values, so the
        // planner must take the Monte-Carlo route — and say why.
        assert_eq!(report.path, EvalPath::MonteCarlo);

        // Missing sources are a typed error.
        let e =
            derive_catalog_for_query(&sources[..1], &query, &gibbs, WorkloadStrategy::TupleDag, 1);
        assert!(matches!(e, Err(ProbDbError::UnknownRelation(n)) if n == "partners"));
    }

    #[test]
    fn negation_and_range_triage_agree_with_brute_force() {
        let (rel, model, gibbs) = setup();
        // NOT(age ∈ {20, 30}): decided wherever age is observed.
        let pred = Predicate::is_in(AttrId(0), [ValueId(0), ValueId(1)]).negate();
        let out = derive_for_query(&rel, &model, &pred, &gibbs, WorkloadStrategy::TupleDag, 1);
        for (t, s) in rel.incomplete_part().iter().zip(&out.selections) {
            match pred.eval_partial(t) {
                Some(true) => assert_eq!(s.prob, 1.0),
                Some(false) => assert_eq!(s.prob, 0.0),
                None => {
                    assert_eq!(s.disposition, LazyDisposition::Inferred);
                    assert!((0.0..=1.0 + 1e-9).contains(&s.prob));
                }
            }
        }
        // The inferred probabilities integrate Δt over the satisfying
        // completions, so the expected count is consistent with certain +
        // per-tuple probabilities by construction.
        let total: f64 = out.selections.iter().map(|s| s.prob).sum();
        assert!((out.expected_count - out.certain_matches as f64 - total).abs() < 1e-12);
    }
}
