//! Association rules over frequent itemsets (Def. 2.5, `ComputeAssocRules`).
//!
//! An association rule here is a pair of itemsets `⟨body ∪ {a = v}, body⟩`:
//! the *head* is a single attribute-value assignment, the *body* the
//! remaining assignments. Confidence is `supp(body ∪ head) / supp(body)` —
//! an estimate of `P(a = v | body)`. Following §III, **no confidence
//! threshold is applied**; every frequent itemset containing the head
//! attribute yields a rule.

use mrsl_itemset::{FrequentItemsets, Item, Itemset};
use mrsl_relation::AttrId;
use serde::{Deserialize, Serialize};

/// An association rule `body ⇒ (attr = value)` with its supports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AssociationRule {
    /// The rule body (the complete part of the subsuming tuple `t2`).
    pub body: Itemset,
    /// The single head assignment.
    pub head: Item,
    /// `supp(body)` — the support of the subsuming tuple.
    pub support_body: f64,
    /// `supp(body ∪ {head})` — the support of the subsumed tuple.
    pub support_full: f64,
}

impl AssociationRule {
    /// `conf(r) = supp(t1) / supp(t2)` (Def. 2.5): the estimated
    /// conditional probability of the head given the body.
    pub fn confidence(&self) -> f64 {
        debug_assert!(self.support_body > 0.0, "frequent bodies have support > 0");
        self.support_full / self.support_body
    }
}

/// `ComputeAssocRules(a, freqItemsets)` of Algorithm 1: all rules whose
/// head assigns attribute `attr`, one per frequent itemset containing
/// `attr`.
///
/// Downward closure guarantees each rule's body is itself frequent, so the
/// body support lookup cannot fail.
pub fn compute_assoc_rules(attr: AttrId, freq: &FrequentItemsets) -> Vec<AssociationRule> {
    let mut rules = Vec::new();
    for fs in freq.iter() {
        let Some(value) = fs.itemset.value_of(attr) else {
            continue;
        };
        let body = fs.itemset.without_attr(attr);
        let support_body = freq
            .support_of(&body)
            .expect("downward closure: body of a frequent itemset is frequent");
        rules.push(AssociationRule {
            body,
            head: Item::new(attr, value),
            support_body,
            support_full: fs.support,
        });
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsl_itemset::AprioriConfig;
    use mrsl_relation::relation::fig1_relation;
    use mrsl_relation::ValueId;

    fn mined(theta: f64) -> FrequentItemsets {
        let rel = fig1_relation();
        FrequentItemsets::mine(
            rel.schema(),
            rel.complete_part(),
            &AprioriConfig {
                support_threshold: theta,
                max_itemsets: 1000,
            },
        )
    }

    #[test]
    fn rules_cover_every_frequent_itemset_with_head_attr() {
        let freq = mined(0.05);
        let age = AttrId(0);
        let rules = compute_assoc_rules(age, &freq);
        let expected = freq
            .iter()
            .filter(|fs| fs.itemset.value_of(age).is_some())
            .count();
        assert_eq!(rules.len(), expected);
        assert!(!rules.is_empty());
        // Every head assigns `age` and no body mentions it.
        for r in &rules {
            assert_eq!(r.head.attr(), age);
            assert_eq!(r.body.value_of(age), None);
        }
    }

    #[test]
    fn confidence_matches_hand_computation() {
        // conf(age=20 | edu=HS) = supp{age=20, edu=HS} / supp{edu=HS}
        //                       = (3/8) / (4/8) = 0.75 on Fig. 1's Rc.
        let freq = mined(0.01);
        let rules = compute_assoc_rules(AttrId(0), &freq);
        let r = rules
            .iter()
            .find(|r| {
                r.head.value() == ValueId(0)
                    && r.body.len() == 1
                    && r.body.value_of(AttrId(1)) == Some(ValueId(0))
            })
            .expect("rule ⟨edu=HS ⇒ age=20⟩ exists");
        assert!((r.confidence() - 0.75).abs() < 1e-12);
        assert!((r.support_body - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_body_rules_estimate_marginals() {
        let freq = mined(0.01);
        let rules = compute_assoc_rules(AttrId(0), &freq);
        // Rules with empty body: one per frequent age value; confidence is
        // the raw value frequency.
        let marginals: Vec<&AssociationRule> = rules.iter().filter(|r| r.body.is_empty()).collect();
        assert_eq!(marginals.len(), 3); // ages 20, 30, 40 all frequent at θ=0.01
        let total: f64 = marginals.iter().map(|r| r.confidence()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confidences_within_unit_interval() {
        let freq = mined(0.01);
        for attr in 0..4u16 {
            for r in compute_assoc_rules(AttrId(attr), &freq) {
                let c = r.confidence();
                assert!((0.0..=1.0 + 1e-12).contains(&c), "confidence {c}");
                assert!(r.support_full <= r.support_body + 1e-12);
            }
        }
    }

    #[test]
    fn no_rules_for_attr_with_no_frequent_values() {
        // θ > 0.5 kills every singleton (each value covers ≤ 4/8 points),
        // so no itemset mentions any attribute.
        let freq = mined(0.6);
        assert!(compute_assoc_rules(AttrId(0), &freq).is_empty());
    }
}
