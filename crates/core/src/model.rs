//! The MRSL model: one semi-lattice per attribute (Def. 2.9, Algorithm 1).

use crate::assoc::compute_assoc_rules;
use crate::config::LearnConfig;
use crate::lattice::Mrsl;
use crate::meta_rule::{compute_meta_rules, MetaRule};
use mrsl_itemset::{FrequentItemsets, Itemset, MiningStats};
use mrsl_relation::{AttrId, CompleteTuple, Schema};
use mrsl_util::Stopwatch;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Statistics of one learning run (the quantities of Fig. 4).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LearnStats {
    /// Frequent-itemset mining statistics.
    pub mining: MiningStats,
    /// Association rules generated across all attributes.
    pub num_assoc_rules: usize,
    /// Total meta-rules — the paper's "model size" (Fig. 4(c)).
    pub num_meta_rules: usize,
    /// Meta-rules per attribute, in attribute order.
    pub per_attr_sizes: Vec<usize>,
    /// Wall-clock learning time (Fig. 4(a), 4(b)).
    pub elapsed: Duration,
}

/// The learned MRSL model: a meta-rule semi-lattice per attribute.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MrslModel {
    schema: Arc<Schema>,
    lattices: Vec<Mrsl>,
    stats: LearnStats,
}

impl MrslModel {
    /// Algorithm 1: learns the model from the complete part of a relation.
    ///
    /// Steps: mine frequent itemsets (Apriori with θ and `maxItemsets`);
    /// per attribute, derive association rules, group them into meta-rules
    /// and assemble the semi-lattice.
    ///
    /// The empty-body root meta-rule `P(a)` is materialized even when some
    /// of `a`'s values fall below the support threshold: the root CPD is
    /// the raw value-frequency histogram over `points` (smoothed like any
    /// other CPD). This matches Fig. 2 — "the top-level meta-rule P(age)
    /// lists the frequencies of the values of age in the known portion of
    /// the dataset" — and guarantees inference always has at least one
    /// voter.
    pub fn learn(schema: &Arc<Schema>, points: &[CompleteTuple], config: &LearnConfig) -> Self {
        let sw = Stopwatch::start();
        let freq = FrequentItemsets::mine(schema, points, &config.apriori());

        let mut lattices = Vec::with_capacity(schema.attr_count());
        let mut num_assoc_rules = 0usize;
        let mut per_attr_sizes = Vec::with_capacity(schema.attr_count());
        for (attr, attribute) in schema.iter() {
            let rules = compute_assoc_rules(attr, &freq);
            num_assoc_rules += rules.len();
            let mut metas = compute_meta_rules(attr, attribute.cardinality(), &rules);
            if metas.first().map(|m| m.level() != 0).unwrap_or(true) {
                metas.insert(0, frequency_root(attr, attribute.cardinality(), points));
            }
            per_attr_sizes.push(metas.len());
            lattices.push(Mrsl::new(attr, attribute.cardinality(), metas));
        }

        let num_meta_rules = per_attr_sizes.iter().sum();
        let stats = LearnStats {
            mining: freq.stats().clone(),
            num_assoc_rules,
            num_meta_rules,
            per_attr_sizes,
            elapsed: sw.elapsed(),
        };
        Self {
            schema: schema.clone(),
            lattices,
            stats,
        }
    }

    /// The schema the model was learned over.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The semi-lattice for `attr`.
    pub fn mrsl(&self, attr: AttrId) -> &Mrsl {
        &self.lattices[attr.index()]
    }

    /// All lattices, in attribute order.
    pub fn lattices(&self) -> &[Mrsl] {
        &self.lattices
    }

    /// Total number of meta-rules — the model-size measure of Fig. 4(c)
    /// and Fig. 9.
    pub fn size(&self) -> usize {
        self.lattices.iter().map(Mrsl::len).sum()
    }

    /// Learning statistics.
    pub fn stats(&self) -> &LearnStats {
        &self.stats
    }

    /// Rebuilds skipped indexes after deserialization.
    pub fn after_deserialize(mut self) -> Self {
        for lattice in &mut self.lattices {
            lattice.rebuild_index();
        }
        self
    }
}

/// Builds the fallback root `P(a)` from raw value frequencies (uniform when
/// `points` is empty).
fn frequency_root(attr: AttrId, cardinality: usize, points: &[CompleteTuple]) -> MetaRule {
    let mut counts = vec![0usize; cardinality];
    for p in points {
        counts[p.value(attr).index()] += 1;
    }
    let total: usize = counts.iter().sum();
    let raw: Vec<f64> = if total == 0 {
        vec![1.0 / cardinality as f64; cardinality]
    } else {
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    };
    MetaRule::new(attr, Itemset::empty(), 1.0, &raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsl_relation::relation::fig1_relation;

    fn learn_fig1(theta: f64) -> MrslModel {
        let rel = fig1_relation();
        MrslModel::learn(
            rel.schema(),
            rel.complete_part(),
            &LearnConfig {
                support_threshold: theta,
                max_itemsets: 1000,
            },
        )
    }

    #[test]
    fn learns_one_lattice_per_attribute() {
        let m = learn_fig1(0.05);
        assert_eq!(m.lattices().len(), 4);
        for (attr, _) in m.schema().iter() {
            assert_eq!(m.mrsl(attr).head_attr(), attr);
            assert!(!m.mrsl(attr).is_empty());
        }
        assert_eq!(m.size(), m.stats().num_meta_rules);
        assert_eq!(
            m.stats().per_attr_sizes.iter().sum::<usize>(),
            m.stats().num_meta_rules
        );
    }

    #[test]
    fn root_cpd_is_value_frequency_histogram() {
        // age over Fig. 1's Rc: 20 ×4, 30 ×1, 40 ×3 → [0.5, 0.125, 0.375].
        let m = learn_fig1(0.01);
        let mrsl = m.mrsl(AttrId(0));
        let root = mrsl.rule(mrsl.root());
        let expected = [0.5, 0.125, 0.375];
        for (got, want) in root.cpd().iter().zip(expected) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
        assert_eq!(root.weight(), 1.0);
    }

    #[test]
    fn high_threshold_still_produces_roots() {
        // θ = 0.9 kills every itemset; the injected frequency roots keep
        // each lattice non-empty.
        let m = learn_fig1(0.9);
        for (attr, _) in m.schema().iter() {
            assert_eq!(m.mrsl(attr).len(), 1, "only the root survives");
            assert_eq!(m.mrsl(attr).rule(m.mrsl(attr).root()).level(), 0);
        }
        assert_eq!(m.size(), 4);
    }

    #[test]
    fn lower_threshold_grows_the_model() {
        let coarse = learn_fig1(0.3);
        let fine = learn_fig1(0.01);
        assert!(
            fine.size() > coarse.size(),
            "{} vs {}",
            fine.size(),
            coarse.size()
        );
    }

    #[test]
    fn empty_relation_learns_uniform_roots() {
        let rel = fig1_relation();
        let m = MrslModel::learn(rel.schema(), &[], &LearnConfig::default());
        let mrsl = m.mrsl(AttrId(0));
        let root = mrsl.rule(mrsl.root());
        for &p in root.cpd() {
            assert!((p - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stats_track_mining_and_time() {
        let m = learn_fig1(0.05);
        assert!(m.stats().num_assoc_rules > 0);
        assert!(!m.stats().mining.level_counts.is_empty());
    }

    #[test]
    fn meta_rule_weights_are_body_supports() {
        let rel = fig1_relation();
        let m = learn_fig1(0.01);
        for lattice in m.lattices() {
            for rule in lattice.rules() {
                let body_tuple = rule.body().to_tuple(4);
                let support = rel.support(&body_tuple);
                assert!(
                    (rule.weight() - support).abs() < 1e-9,
                    "weight {} vs support {} for {:?}",
                    rule.weight(),
                    support,
                    rule.body()
                );
            }
        }
    }
}
