//! Meta-rule semi-lattices (MRSL) — the paper's primary contribution.
//!
//! An MRSL model is an *inference ensemble* learned from the complete part
//! of a relation and used to derive probability distributions for the
//! missing values of the incomplete part, yielding a disjoint-independent
//! probabilistic database.
//!
//! Learning (paper §III, Algorithm 1):
//! * [`assoc`] — association rules over frequent itemsets (Def. 2.5).
//! * [`meta_rule`] — meta-rules: grouped rules sharing a body, their
//!   smoothed CPD estimates and support weights (Def. 2.6).
//! * [`lattice`] — the per-attribute semi-lattice ordered by body
//!   subsumption (Defs. 2.7, 2.8), with voter matching.
//! * [`model`] — the MRSL model (one lattice per attribute, Def. 2.9) and
//!   the end-to-end learning pipeline.
//!
//! Inference (paper §IV–§V) — one [`InferenceEngine`] per strategy of the
//! ensemble, all running against an [`InferContext`] that owns scratch,
//! the voted-CPD cache and seeding:
//! * [`SingleVoting`] — Algorithm 2: voting inference for one missing
//!   attribute (`all`/`best` voters, `averaged`/`weighted` schemes).
//! * [`GibbsSampler`] — ordered Gibbs sampling for multiple missing
//!   attributes, with a shared CPD cache.
//! * [`TupleDagWorkload`] — Algorithm 3: the tuple-DAG workload
//!   optimization that shares samples between tuples related by
//!   subsumption.
//! * [`IndependentBaseline`] — the independence-assuming baseline the
//!   paper argues against in §V (kept for ablation).
//!
//! [`infer_batch`] fans any engine over a workload on the shared rayon
//! executor, with deterministic per-tuple seeding (results are
//! bit-identical for any thread count).
//!
//! End to end:
//! * [`derive`](mod@derive) — learns a model and converts every incomplete
//!   tuple's estimate `Δt` into a block of a disjoint-independent
//!   probabilistic database ([`mrsl_probdb::ProbDb`]).
//! * [`lazy`] — query-targeted partial derivation (§VIII future work).

pub mod assoc;
pub mod config;
pub mod derive;
pub mod infer;
pub mod lattice;
pub mod lazy;
pub mod meta_rule;
pub mod model;

pub use config::{GibbsConfig, LearnConfig, VoterChoice, VotingConfig, VotingScheme};
pub use derive::{
    derive_probabilistic_db, derive_probabilistic_db_with_engine, DeriveConfig, DeriveOutput,
};
pub use infer::batch::infer_batch;
pub use infer::dag::{workload_engine, SamplingCost, TupleDag, WorkloadResult, WorkloadStrategy};
pub use infer::engine::{
    GibbsSampler, IndependentBaseline, InferContext, InferenceEngine, SingleVoting,
    TupleDagWorkload,
};
pub use infer::gibbs::JointEstimate;
pub use lattice::{MetaRuleId, Mrsl};
pub use lazy::{
    derive_catalog_for_query, derive_catalog_for_query_with_engine, derive_for_query,
    derive_for_query_with_engine, LazyCatalogOutput, LazyDisposition, LazyQueryOutput,
    LazyRelationStats, LazySelection, LazySource,
};
pub use meta_rule::MetaRule;
pub use model::{LearnStats, MrslModel};
#[allow(deprecated)]
pub use {
    infer::dag::sample_workload, infer::gibbs::infer_joint,
    infer::independent::infer_joint_independent, infer::single::infer_single,
};
