//! Ordered Gibbs sampling for multiple missing attributes (§V-A).
//!
//! Estimating each missing attribute independently "would rely on
//! independence assumptions that are not warranted"; instead the sampler
//! cycles through the missing attributes, resampling each from its MRSL's
//! voted CPD with **all other attributes as evidence** (observed attributes
//! stay clamped — the paper's fix for wasting samples on irrelevant parts
//! of the space). Meta-rule smoothing keeps every local CPD strictly
//! positive, so the chain is irreducible and converges to a unique
//! stationary joint.
//!
//! The voted-CPD cache — "caching of the results of partial computations"
//! in the paper's words — lives in the
//! [`InferContext`] the chain sweeps
//! against, so it is shared across every chain (and tuple) the context
//! serves. The engine wrapper for this module is
//! [`crate::infer::engine::GibbsSampler`].

use crate::infer::engine::{GibbsSampler, InferContext, InferenceEngine};
use crate::model::MrslModel;
use mrsl_relation::{AttrId, AttrMask, JointIndexer, PartialTuple};
use mrsl_util::{derive_seed, seeded_rng};
use rand::rngs::StdRng;
use rand::Rng;

/// An estimated joint distribution `Δt` over a tuple's missing attributes.
#[derive(Debug, Clone)]
pub struct JointEstimate {
    /// Maps value combinations of the missing attributes to indices.
    pub indexer: JointIndexer,
    /// Estimated probabilities, aligned with `indexer` (sum 1).
    pub probs: Vec<f64>,
    /// Number of recorded samples behind the estimate (0 for exact /
    /// degenerate estimates).
    pub sample_count: usize,
}

impl JointEstimate {
    /// Index of the most probable combination.
    pub fn top1(&self) -> usize {
        self.probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(i, _)| i)
            .expect("distributions are non-empty")
    }

    /// Additively smoothed copy (every entry ≥ ε > 0, renormalized); used
    /// before KL scoring of empirical histograms that may contain zeros.
    pub fn smoothed(&self, epsilon: f64) -> Vec<f64> {
        assert!(epsilon > 0.0);
        let k = self.probs.len() as f64;
        let denom = 1.0 + epsilon * k;
        self.probs.iter().map(|&p| (p + epsilon) / denom).collect()
    }
}

/// One Gibbs chain for a single incomplete tuple. The chain owns only its
/// Markov state and RNG; voting scratch and the CPD cache come from the
/// [`InferContext`] passed to [`GibbsChain::sweep`], so many chains (the
/// tuple-DAG scheduler interleaves dozens) share one cache.
pub(crate) struct GibbsChain {
    /// Current full assignment; observed attributes never change.
    state: Vec<u16>,
    /// The missing attributes, ascending.
    missing: Vec<AttrId>,
    /// Evidence mask per missing attribute: everything except itself.
    evidence_masks: Vec<AttrMask>,
    rng: StdRng,
}

impl GibbsChain {
    /// Starts a chain for `tuple` "with a valid random assignment" of the
    /// missing attributes (uniform init, as any positive initialization is
    /// valid given smoothed CPDs).
    pub fn new(model: &MrslModel, tuple: &PartialTuple, seed: u64) -> Self {
        let schema = model.schema();
        let n = schema.attr_count();
        debug_assert_eq!(tuple.arity(), n);
        let mut rng = seeded_rng(derive_seed(seed, &[0x61bb5]));
        let mut state = vec![0u16; n];
        for asg in tuple.assignments() {
            state[asg.attr.index()] = asg.value.0;
        }
        let missing: Vec<AttrId> = tuple.missing_mask().iter().collect();
        for &a in &missing {
            state[a.index()] = rng.gen_range(0..schema.cardinality(a)) as u16;
        }
        let full = AttrMask::full(n);
        let evidence_masks = missing.iter().map(|&a| full.without(a)).collect();
        Self {
            state,
            missing,
            evidence_masks,
            rng,
        }
    }

    /// The missing attributes, ascending.
    pub fn missing(&self) -> &[AttrId] {
        &self.missing
    }

    /// The current full assignment.
    pub fn state(&self) -> &[u16] {
        &self.state
    }

    /// Performs one ordered sweep (resamples every missing attribute once)
    /// and returns the updated full state.
    pub fn sweep(&mut self, ctx: &mut InferContext<'_>) -> &[u16] {
        for (k, &attr) in self.missing.iter().enumerate() {
            let mask = self.evidence_masks[k];
            let cpd = ctx.voted_cpd(attr, &self.state, mask);
            self.state[attr.index()] = sample_categorical(&cpd, &mut self.rng);
        }
        &self.state
    }
}

/// Samples an index from a normalized CPD. Local copy of the categorical
/// sampler to keep `mrsl-core` independent of the Bayesian-network crate.
#[inline]
fn sample_categorical<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> u16 {
    let mut u: f64 = rng.gen::<f64>();
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i as u16;
        }
        u -= w;
    }
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .expect("smoothed CPDs are strictly positive") as u16
}

/// §V-A "tuple-at-a-time" inference: estimates the joint distribution over
/// the missing attributes of `t` with one dedicated Gibbs chain (burn-in
/// `B`, then `N` recorded sweeps).
///
/// A complete tuple yields the trivial single-combination estimate.
#[deprecated(
    since = "0.1.0",
    note = "construct a `GibbsSampler` engine and call `estimate` on an `InferContext` \
            (or `infer_batch` for many tuples)"
)]
pub fn infer_joint(
    model: &MrslModel,
    t: &PartialTuple,
    config: &crate::config::GibbsConfig,
    seed: u64,
) -> JointEstimate {
    let mut ctx = InferContext::new(model, config.voting, seed);
    GibbsSampler::from_config(config).estimate(&mut ctx, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GibbsConfig, LearnConfig, VotingConfig};
    use crate::infer::engine::InferenceEngine;
    use mrsl_relation::relation::fig1_relation;
    use mrsl_relation::ValueId;

    fn model() -> MrslModel {
        let rel = fig1_relation();
        MrslModel::learn(
            rel.schema(),
            rel.complete_part(),
            &LearnConfig {
                support_threshold: 0.01,
                max_itemsets: 1000,
            },
        )
    }

    fn sampler(burn: usize, n: usize) -> GibbsSampler {
        GibbsSampler {
            burn_in: burn,
            samples: n,
        }
    }

    fn ctx(m: &MrslModel, seed: u64) -> InferContext<'_> {
        InferContext::new(m, VotingConfig::best_averaged(), seed)
    }

    #[test]
    fn estimates_are_distributions() {
        let m = model();
        // t12 = ⟨30, MS, ?, ?⟩ from Fig. 1.
        let t = PartialTuple::from_options(&[Some(1), Some(2), None, None]);
        let est = sampler(50, 500).estimate(&mut ctx(&m, 1), &t);
        assert_eq!(est.indexer.size(), 4); // inc × nw = 2 × 2
        assert!((est.probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(est.probs.iter().all(|&p| p >= 0.0));
        assert_eq!(est.sample_count, 500);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(0), None, None, None]);
        let a = sampler(20, 200).estimate(&mut ctx(&m, 7), &t);
        let b = sampler(20, 200).estimate(&mut ctx(&m, 7), &t);
        let c = sampler(20, 200).estimate(&mut ctx(&m, 8), &t);
        assert_eq!(a.probs, b.probs);
        assert_ne!(a.probs, c.probs);
    }

    #[test]
    fn complete_tuple_is_trivial() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(0), Some(0), Some(0), Some(0)]);
        let est = sampler(10, 100).estimate(&mut ctx(&m, 0), &t);
        assert_eq!(est.probs, vec![1.0]);
        assert_eq!(est.sample_count, 0);
    }

    #[test]
    fn single_missing_gibbs_approaches_single_inference() {
        // With one missing attribute the chain samples i.i.d. from the
        // voted CPD, so the histogram converges to the voted estimate.
        let m = model();
        let t = PartialTuple::from_options(&[None, Some(0), Some(0), Some(1)]);
        let mut c = ctx(&m, 3);
        let est = sampler(10, 30_000).estimate(&mut c, &t);
        let direct = c.vote_single(&t, AttrId(0));
        for (g, d) in est.probs.iter().zip(&direct) {
            assert!((g - d).abs() < 0.02, "{g} vs {d}");
        }
    }

    #[test]
    fn clamped_evidence_never_changes() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(1), Some(2), None, None]);
        let mut c = ctx(&m, 5);
        let mut chain = GibbsChain::new(&m, &t, 5);
        for _ in 0..50 {
            let state = chain.sweep(&mut c);
            assert_eq!(state[0], 1);
            assert_eq!(state[1], 2);
        }
    }

    #[test]
    fn top1_and_smoothed() {
        let est = JointEstimate {
            indexer: JointIndexer::new(
                &fig1_relation().schema().clone(),
                AttrMask::single(AttrId(2)),
            ),
            probs: vec![0.3, 0.7],
            sample_count: 10,
        };
        assert_eq!(est.top1(), 1);
        let sm = est.smoothed(0.01);
        assert!((sm.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(sm.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn cache_hits_accumulate() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(0), None, None, None]);
        let mut c = ctx(&m, 9);
        let mut chain = GibbsChain::new(&m, &t, 9);
        for _ in 0..200 {
            chain.sweep(&mut c);
        }
        // The state space is tiny (3·2·2 = 12 combos × 3 attrs), so the
        // cache must be hitting after 200 sweeps.
        let (hits, misses) = c.cache_stats();
        assert!(hits > misses, "hits {hits} vs misses {misses}");
    }

    #[test]
    fn estimate_reflects_evidence_correlations() {
        // Fig. 1's Rc: points matching ⟨20, HS⟩ are t4 (100K, 500K),
        // t6 (50K, 100K) and t7 (50K, 500K) — inc=50K on 2 of 3. The Gibbs
        // estimate over (inc, nw) must put more mass on inc=50K.
        let m = model();
        let t = PartialTuple::from_options(&[Some(0), Some(0), None, None]);
        let est = sampler(200, 6000).estimate(&mut ctx(&m, 11), &t);
        let ix = &est.indexer;
        let p_inc50: f64 = (0..ix.size())
            .filter(|&i| ix.decode(i)[0].1 == ValueId(0))
            .map(|i| est.probs[i])
            .sum();
        assert!(p_inc50 > 0.55, "P(inc=50K) = {p_inc50}");
    }

    /// NOT a historic-parity check (the shim delegates to the engine, so
    /// that comparison would be vacuous — the genuine reference lives in
    /// `tests/engine_parity.rs`): this guards the shim's *argument
    /// wiring*, i.e. that `config.voting` and `seed` reach the context
    /// unchanged.
    #[test]
    #[allow(deprecated)]
    fn shim_wires_voting_and_seed_through_to_the_engine() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(1), Some(2), None, None]);
        let config = GibbsConfig {
            burn_in: 40,
            samples: 400,
            voting: VotingConfig::best_averaged(),
        };
        let legacy = infer_joint(&m, &t, &config, 13);
        let engine = GibbsSampler::from_config(&config).estimate(&mut ctx(&m, 13), &t);
        assert_eq!(legacy.probs, engine.probs);
        assert_eq!(legacy.sample_count, engine.sample_count);
    }
}
