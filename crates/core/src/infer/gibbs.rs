//! Ordered Gibbs sampling for multiple missing attributes (§V-A).
//!
//! Estimating each missing attribute independently "would rely on
//! independence assumptions that are not warranted"; instead the sampler
//! cycles through the missing attributes, resampling each from its MRSL's
//! voted CPD with **all other attributes as evidence** (observed attributes
//! stay clamped — the paper's fix for wasting samples on irrelevant parts
//! of the space). Meta-rule smoothing keeps every local CPD strictly
//! positive, so the chain is irreducible and converges to a unique
//! stationary joint.
//!
//! A per-chain **CPD cache** memoizes the voted CPD per (attribute,
//! evidence state): the sampler revisits the same states constantly, and
//! this is the "caching of the results of partial computations" the paper
//! applies to multi-attribute inference.

use crate::config::{GibbsConfig, VotingConfig};
use crate::infer::single::vote;
use crate::lattice::MatchScratch;
use crate::model::MrslModel;
use mrsl_relation::{AttrId, AttrMask, JointIndexer, PartialTuple};
use mrsl_util::{derive_seed, seeded_rng, FxHashMap};
use rand::rngs::StdRng;
use rand::Rng;
use std::rc::Rc;

/// An estimated joint distribution `Δt` over a tuple's missing attributes.
#[derive(Debug, Clone)]
pub struct JointEstimate {
    /// Maps value combinations of the missing attributes to indices.
    pub indexer: JointIndexer,
    /// Estimated probabilities, aligned with `indexer` (sum 1).
    pub probs: Vec<f64>,
    /// Number of recorded samples behind the estimate (0 for exact /
    /// degenerate estimates).
    pub sample_count: usize,
}

impl JointEstimate {
    /// Index of the most probable combination.
    pub fn top1(&self) -> usize {
        self.probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(i, _)| i)
            .expect("distributions are non-empty")
    }

    /// Additively smoothed copy (every entry ≥ ε > 0, renormalized); used
    /// before KL scoring of empirical histograms that may contain zeros.
    pub fn smoothed(&self, epsilon: f64) -> Vec<f64> {
        assert!(epsilon > 0.0);
        let k = self.probs.len() as f64;
        let denom = 1.0 + epsilon * k;
        self.probs.iter().map(|&p| (p + epsilon) / denom).collect()
    }
}

/// One Gibbs chain for a single incomplete tuple. Exposed to the tuple-DAG
/// sampler, which interleaves sweeps from many chains.
pub(crate) struct GibbsChain<'m> {
    model: &'m MrslModel,
    voting: VotingConfig,
    /// Current full assignment; observed attributes never change.
    state: Vec<u16>,
    /// The missing attributes, ascending.
    missing: Vec<AttrId>,
    /// Evidence mask per missing attribute: everything except itself.
    evidence_masks: Vec<AttrMask>,
    cache: CpdCache,
    scratch: MatchScratch,
    cpd_buf: Vec<f64>,
    rng: StdRng,
}

impl<'m> GibbsChain<'m> {
    /// Starts a chain for `tuple` "with a valid random assignment" of the
    /// missing attributes (uniform init, as any positive initialization is
    /// valid given smoothed CPDs).
    pub fn new(model: &'m MrslModel, tuple: &PartialTuple, voting: VotingConfig, seed: u64) -> Self {
        let schema = model.schema();
        let n = schema.attr_count();
        debug_assert_eq!(tuple.arity(), n);
        let mut rng = seeded_rng(derive_seed(seed, &[0x61bb5]));
        let mut state = vec![0u16; n];
        for asg in tuple.assignments() {
            state[asg.attr.index()] = asg.value.0;
        }
        let missing: Vec<AttrId> = tuple.missing_mask().iter().collect();
        for &a in &missing {
            state[a.index()] = rng.gen_range(0..schema.cardinality(a)) as u16;
        }
        let full = AttrMask::full(n);
        let evidence_masks = missing.iter().map(|&a| full.without(a)).collect();
        Self {
            model,
            voting,
            state,
            missing,
            evidence_masks,
            cache: CpdCache::new(model),
            scratch: MatchScratch::default(),
            cpd_buf: Vec::new(),
            rng,
        }
    }

    /// The missing attributes, ascending.
    pub fn missing(&self) -> &[AttrId] {
        &self.missing
    }

    /// Performs one ordered sweep (resamples every missing attribute once)
    /// and returns the updated full state.
    pub fn sweep(&mut self) -> &[u16] {
        for (k, &attr) in self.missing.iter().enumerate() {
            let mask = self.evidence_masks[k];
            let cpd = self.cache.lookup(
                attr,
                &self.state,
                mask,
                self.model,
                &self.voting,
                &mut self.scratch,
                &mut self.cpd_buf,
            );
            self.state[attr.index()] = sample_categorical(&cpd, &mut self.rng);
        }
        &self.state
    }
}

/// Samples an index from a normalized CPD. Local copy of the categorical
/// sampler to keep `mrsl-core` independent of the Bayesian-network crate.
#[inline]
fn sample_categorical<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> u16 {
    let mut u: f64 = rng.gen::<f64>();
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i as u16;
        }
        u -= w;
    }
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .expect("smoothed CPDs are strictly positive") as u16
}

/// Memoizes voted CPDs per (attribute, evidence state).
///
/// The key packs the full state in mixed radix (with the target attribute's
/// slot zeroed) plus the attribute index. Packing requires the product of
/// domain sizes × attribute count to fit in `u64`; wider schemas disable
/// the cache (correctness is unaffected).
struct CpdCache {
    entries: FxHashMap<u64, Rc<[f64]>>,
    strides: Option<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl CpdCache {
    fn new(model: &MrslModel) -> Self {
        let schema = model.schema();
        let mut strides = Vec::with_capacity(schema.attr_count());
        let mut acc: u128 = 1;
        for a in schema.attr_ids() {
            strides.push(acc as u64);
            acc = acc.saturating_mul(schema.cardinality(a) as u128);
        }
        let packable =
            acc.saturating_mul(schema.attr_count().max(1) as u128) < u64::MAX as u128;
        Self {
            entries: FxHashMap::default(),
            strides: packable.then_some(strides),
            hits: 0,
            misses: 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn lookup(
        &mut self,
        attr: AttrId,
        state: &[u16],
        evidence_mask: AttrMask,
        model: &MrslModel,
        voting: &VotingConfig,
        scratch: &mut MatchScratch,
        buf: &mut Vec<f64>,
    ) -> Rc<[f64]> {
        let Some(strides) = &self.strides else {
            // Unpackable schema: compute directly.
            vote(model.mrsl(attr), state, evidence_mask, voting, scratch, buf);
            return Rc::from(buf.as_slice());
        };
        let mut key = 0u64;
        for (i, &v) in state.iter().enumerate() {
            if i != attr.index() {
                key = key.wrapping_add(strides[i].wrapping_mul(v as u64));
            }
        }
        // Mix the attribute into the high bits (domain products are far
        // below 2^58 for supported schemas).
        key = key.wrapping_add((attr.0 as u64).wrapping_mul(u64::MAX / 64));
        if let Some(cpd) = self.entries.get(&key) {
            self.hits += 1;
            return cpd.clone();
        }
        self.misses += 1;
        vote(model.mrsl(attr), state, evidence_mask, voting, scratch, buf);
        let cpd: Rc<[f64]> = Rc::from(buf.as_slice());
        self.entries.insert(key, cpd.clone());
        cpd
    }
}

/// §V-A "tuple-at-a-time" inference: estimates the joint distribution over
/// the missing attributes of `t` with one dedicated Gibbs chain (burn-in
/// `B`, then `N` recorded sweeps).
///
/// A complete tuple yields the trivial single-combination estimate.
pub fn infer_joint(
    model: &MrslModel,
    t: &PartialTuple,
    config: &GibbsConfig,
    seed: u64,
) -> JointEstimate {
    let indexer = JointIndexer::new(model.schema(), t.missing_mask());
    if indexer.size() == 1 {
        return JointEstimate {
            indexer,
            probs: vec![1.0],
            sample_count: 0,
        };
    }
    let mut chain = GibbsChain::new(model, t, config.voting, seed);
    for _ in 0..config.burn_in {
        chain.sweep();
    }
    let mut counts = vec![0u32; indexer.size()];
    let missing = chain.missing().to_vec();
    let mut combo = vec![mrsl_relation::ValueId(0); missing.len()];
    for _ in 0..config.samples {
        let state = chain.sweep();
        for (slot, &a) in combo.iter_mut().zip(&missing) {
            *slot = mrsl_relation::ValueId(state[a.index()]);
        }
        counts[indexer.index_of(&combo)] += 1;
    }
    let n = config.samples.max(1) as f64;
    JointEstimate {
        indexer,
        probs: counts.into_iter().map(|c| c as f64 / n).collect(),
        sample_count: config.samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LearnConfig;
    use mrsl_relation::relation::fig1_relation;
    use mrsl_relation::ValueId;

    fn model() -> MrslModel {
        let rel = fig1_relation();
        MrslModel::learn(
            rel.schema(),
            rel.complete_part(),
            &LearnConfig {
                support_threshold: 0.01,
                max_itemsets: 1000,
            },
        )
    }

    fn cfg(burn: usize, n: usize) -> GibbsConfig {
        GibbsConfig {
            burn_in: burn,
            samples: n,
            voting: VotingConfig::best_averaged(),
        }
    }

    #[test]
    fn estimates_are_distributions() {
        let m = model();
        // t12 = ⟨30, MS, ?, ?⟩ from Fig. 1.
        let t = PartialTuple::from_options(&[Some(1), Some(2), None, None]);
        let est = infer_joint(&m, &t, &cfg(50, 500), 1);
        assert_eq!(est.indexer.size(), 4); // inc × nw = 2 × 2
        assert!((est.probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(est.probs.iter().all(|&p| p >= 0.0));
        assert_eq!(est.sample_count, 500);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(0), None, None, None]);
        let a = infer_joint(&m, &t, &cfg(20, 200), 7);
        let b = infer_joint(&m, &t, &cfg(20, 200), 7);
        let c = infer_joint(&m, &t, &cfg(20, 200), 8);
        assert_eq!(a.probs, b.probs);
        assert_ne!(a.probs, c.probs);
    }

    #[test]
    fn complete_tuple_is_trivial() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(0), Some(0), Some(0), Some(0)]);
        let est = infer_joint(&m, &t, &cfg(10, 100), 0);
        assert_eq!(est.probs, vec![1.0]);
        assert_eq!(est.sample_count, 0);
    }

    #[test]
    fn single_missing_gibbs_approaches_single_inference() {
        // With one missing attribute the chain samples i.i.d. from the
        // voted CPD, so the histogram converges to infer_single's output.
        let m = model();
        let t = PartialTuple::from_options(&[None, Some(0), Some(0), Some(1)]);
        let est = infer_joint(&m, &t, &cfg(10, 30_000), 3);
        let direct =
            crate::infer::single::infer_single(&m, &t, AttrId(0), &VotingConfig::best_averaged());
        for (g, d) in est.probs.iter().zip(&direct) {
            assert!((g - d).abs() < 0.02, "{g} vs {d}");
        }
    }

    #[test]
    fn clamped_evidence_never_changes() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(1), Some(2), None, None]);
        let mut chain = GibbsChain::new(&m, &t, VotingConfig::best_averaged(), 5);
        for _ in 0..50 {
            let state = chain.sweep();
            assert_eq!(state[0], 1);
            assert_eq!(state[1], 2);
        }
    }

    #[test]
    fn top1_and_smoothed() {
        let est = JointEstimate {
            indexer: JointIndexer::new(&fig1_relation().schema().clone(), AttrMask::single(AttrId(2))),
            probs: vec![0.3, 0.7],
            sample_count: 10,
        };
        assert_eq!(est.top1(), 1);
        let sm = est.smoothed(0.01);
        assert!((sm.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(sm.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn cache_hits_accumulate() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(0), None, None, None]);
        let mut chain = GibbsChain::new(&m, &t, VotingConfig::best_averaged(), 9);
        for _ in 0..200 {
            chain.sweep();
        }
        // The state space is tiny (3·2·2 = 12 combos × 3 attrs), so the
        // cache must be hitting after 200 sweeps.
        assert!(chain.cache.hits > chain.cache.misses);
        assert!(chain.cache.entries.len() <= 3 * 12);
    }

    #[test]
    fn estimate_reflects_evidence_correlations() {
        // Fig. 1's Rc: points matching ⟨20, HS⟩ are t4 (100K, 500K),
        // t6 (50K, 100K) and t7 (50K, 500K) — inc=50K on 2 of 3. The Gibbs
        // estimate over (inc, nw) must put more mass on inc=50K.
        let m = model();
        let t = PartialTuple::from_options(&[Some(0), Some(0), None, None]);
        let est = infer_joint(&m, &t, &cfg(200, 6000), 11);
        let ix = &est.indexer;
        let p_inc50: f64 = (0..ix.size())
            .filter(|&i| ix.decode(i)[0].1 == ValueId(0))
            .map(|i| est.probs[i])
            .sum();
        assert!(p_inc50 > 0.55, "P(inc=50K) = {p_inc50}");
    }
}
