//! The parallel batch layer: one engine, many tuples, many workers.
//!
//! [`infer_batch`] is the single entry point every workload in the
//! workspace funnels through — `derive_probabilistic_db`, the lazy query
//! path, and the evaluation harness. It delegates to the engine's
//! `estimate_batch`, whose default implementation lives here:
//!
//! 1. **Deduplicate** the workload (duplicates share one estimate — and
//!    one chain — exactly like the tuple-DAG path).
//! 2. **Fan out** the distinct tuples in contiguous chunks over the shared
//!    rayon executor. Each worker owns one [`InferContext`], so the match
//!    scratch and voted-CPD cache amortize across its whole chunk.
//! 3. **Seed deterministically**: tuple `i` (distinct order) always uses
//!    `derive_seed(seed, [i])`, so the result is bit-identical no matter
//!    how many threads ran — caching and chunking only change *when* a CPD
//!    is computed, never its value.

use crate::config::VotingConfig;
use crate::infer::dag::{SamplingCost, WorkloadResult};
use crate::infer::engine::{InferContext, InferenceEngine};
use crate::infer::gibbs::JointEstimate;
use crate::model::MrslModel;
use mrsl_relation::PartialTuple;
use mrsl_util::{FxHashMap, Stopwatch};
use rayon::prelude::*;

/// Estimates `Δt` for every tuple of `tuples` with `engine`, in parallel.
///
/// Returns one estimate per input tuple (duplicates share their estimate)
/// plus aggregate sampling cost. Deterministic per `seed` regardless of
/// the executor's thread count.
pub fn infer_batch<E: InferenceEngine + ?Sized>(
    model: &MrslModel,
    tuples: &[PartialTuple],
    engine: &E,
    voting: VotingConfig,
    seed: u64,
) -> WorkloadResult {
    engine.estimate_batch(model, voting, tuples, seed)
}

/// The default `estimate_batch`: dedup → chunked parallel map → scatter.
pub(crate) fn data_parallel_batch<E: InferenceEngine + ?Sized>(
    engine: &E,
    model: &MrslModel,
    voting: VotingConfig,
    tuples: &[PartialTuple],
    seed: u64,
) -> WorkloadResult {
    let sw = Stopwatch::start();
    if tuples.is_empty() {
        return WorkloadResult {
            estimates: Vec::new(),
            cost: SamplingCost::default(),
        };
    }

    // Deduplicate in first-appearance order (the order fixes each distinct
    // tuple's seed, so it must not depend on scheduling).
    let mut node_of: FxHashMap<&PartialTuple, usize> = FxHashMap::default();
    let mut distinct: Vec<&PartialTuple> = Vec::new();
    let mut entry_nodes: Vec<usize> = Vec::with_capacity(tuples.len());
    for t in tuples {
        let idx = *node_of.entry(t).or_insert_with(|| {
            distinct.push(t);
            distinct.len() - 1
        });
        entry_nodes.push(idx);
    }

    // Contiguous chunks, one context per chunk. Oversplit (4× threads) so
    // a slow chunk cannot straggle the whole batch; chunk boundaries do
    // not affect results, only cache locality.
    let threads = rayon::current_num_threads().max(1);
    let chunk_len = distinct.len().div_ceil(threads * 4).max(1);
    let chunks: Vec<(usize, Vec<&PartialTuple>)> = distinct
        .chunks(chunk_len)
        .enumerate()
        .map(|(k, chunk)| (k * chunk_len, chunk.to_vec()))
        .collect();

    let per_chunk: Vec<Vec<(JointEstimate, SamplingCost)>> = chunks
        .into_par_iter()
        .map(|(offset, items)| {
            let mut ctx = InferContext::new(model, voting, seed);
            items
                .into_iter()
                .enumerate()
                .map(|(j, t)| {
                    ctx.reseed_for_index(offset + j);
                    let est = engine.estimate(&mut ctx, t);
                    let cost = engine.tuple_cost(&est);
                    (est, cost)
                })
                .collect()
        })
        .collect();

    let mut node_estimates: Vec<JointEstimate> = Vec::with_capacity(distinct.len());
    let mut cost = SamplingCost::default();
    for chunk in per_chunk {
        for (est, tuple_cost) in chunk {
            cost.absorb(&tuple_cost);
            node_estimates.push(est);
        }
    }
    let estimates = entry_nodes
        .iter()
        .map(|&node| node_estimates[node].clone())
        .collect();
    cost.elapsed = sw.elapsed();
    WorkloadResult { estimates, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LearnConfig;
    use crate::infer::engine::{GibbsSampler, IndependentBaseline, SingleVoting};
    use mrsl_relation::relation::fig1_relation;

    fn model() -> crate::model::MrslModel {
        let rel = fig1_relation();
        crate::model::MrslModel::learn(
            rel.schema(),
            rel.complete_part(),
            &LearnConfig {
                support_threshold: 0.01,
                max_itemsets: 1000,
            },
        )
    }

    fn multi_workload() -> Vec<PartialTuple> {
        vec![
            PartialTuple::from_options(&[Some(0), Some(0), None, None]),
            PartialTuple::from_options(&[Some(0), None, Some(0), None]),
            PartialTuple::from_options(&[Some(1), Some(2), None, None]),
            PartialTuple::from_options(&[Some(0), Some(0), None, None]), // dup of [0]
            PartialTuple::from_options(&[None, Some(0), None, None]),
        ]
    }

    #[test]
    fn batch_covers_every_entry_and_dedups() {
        let m = model();
        let gibbs = GibbsSampler {
            burn_in: 20,
            samples: 100,
        };
        let workload = multi_workload();
        let res = infer_batch(&m, &workload, &gibbs, Default::default(), 1);
        assert_eq!(res.estimates.len(), workload.len());
        // Entry 3 duplicates entry 0: identical estimate, one chain.
        assert_eq!(res.estimates[0].probs, res.estimates[3].probs);
        assert_eq!(res.cost.chains, 4, "4 distinct tuples → 4 chains");
        assert_eq!(res.cost.total_draws, 4 * 120);
        assert_eq!(res.cost.burn_in_draws, 4 * 20);
    }

    #[test]
    fn single_voting_batch_costs_nothing() {
        let m = model();
        let workload = vec![
            PartialTuple::from_options(&[None, Some(0), Some(0), Some(1)]),
            PartialTuple::from_options(&[Some(0), None, Some(0), Some(1)]),
        ];
        let res = infer_batch(&m, &workload, &SingleVoting, Default::default(), 0);
        assert_eq!(res.estimates.len(), 2);
        assert_eq!(res.cost.total_draws, 0);
        assert_eq!(res.cost.chains, 0);
        for est in &res.estimates {
            assert_eq!(est.sample_count, 0);
            assert!((est.probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn exact_engines_are_exact_in_batch() {
        let m = model();
        let workload = multi_workload();
        let a = infer_batch(&m, &workload, &IndependentBaseline, Default::default(), 1);
        let b = infer_batch(&m, &workload, &IndependentBaseline, Default::default(), 99);
        for (ea, eb) in a.estimates.iter().zip(&b.estimates) {
            assert_eq!(ea.probs, eb.probs, "independent estimates ignore the seed");
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let m = model();
        let res = infer_batch(
            &m,
            &[],
            &GibbsSampler {
                burn_in: 5,
                samples: 10,
            },
            Default::default(),
            4,
        );
        assert!(res.estimates.is_empty());
        assert_eq!(res.cost.total_draws, 0);
    }

    #[test]
    fn default_batch_matches_per_tuple_estimates_with_documented_seeds() {
        // Non-vacuous reference for the batch plumbing: reimplement the
        // documented contract (dedup in first-appearance order, tuple `i`
        // seeded `derive_seed(seed, [i])`, duplicates scattered) with
        // direct per-tuple engine calls and fresh contexts, and require
        // bit-identical output. Catches regressions in dedup order, seed
        // derivation, chunking and scatter independently of
        // `estimate_batch` itself.
        let m = model();
        let gibbs = GibbsSampler {
            burn_in: 20,
            samples: 150,
        };
        let workload = multi_workload();
        let batch = infer_batch(&m, &workload, &gibbs, Default::default(), 31);
        let mut seen: Vec<&PartialTuple> = Vec::new();
        for (entry, t) in workload.iter().enumerate() {
            let node = seen.iter().position(|&s| s == t).unwrap_or_else(|| {
                seen.push(t);
                seen.len() - 1
            });
            let mut ctx = crate::infer::engine::InferContext::new(&m, Default::default(), 0);
            ctx.set_seed(mrsl_util::derive_seed(31, &[node as u64]));
            let direct = gibbs.estimate(&mut ctx, t);
            assert_eq!(batch.estimates[entry].probs, direct.probs, "entry {entry}");
        }
    }

    #[test]
    fn batch_results_are_bit_identical_across_thread_counts() {
        let m = model();
        let gibbs = GibbsSampler {
            burn_in: 30,
            samples: 200,
        };
        let workload = multi_workload();
        let reference = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool")
            .install(|| infer_batch(&m, &workload, &gibbs, Default::default(), 21));
        for threads in [2, 3, 8] {
            let run = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool")
                .install(|| infer_batch(&m, &workload, &gibbs, Default::default(), 21));
            for (a, b) in reference.estimates.iter().zip(&run.estimates) {
                assert_eq!(a.probs, b.probs, "{threads} threads");
            }
            assert_eq!(reference.cost.total_draws, run.cost.total_draws);
        }
    }
}
