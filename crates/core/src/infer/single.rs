//! Single-attribute voting (Algorithm 2).
//!
//! Given an incomplete tuple `t` with attribute `a` missing, the matching
//! meta-rules of `MRSL_a` vote on the CPD estimate: either all matches or
//! only the most specific ones (`vChoice`), combined position-wise by plain
//! or support-weighted averaging (`vScheme`).
//!
//! The engine wrapper is [`crate::infer::engine::SingleVoting`]; the
//! allocation-light entry point for callers that already hold a context is
//! [`crate::infer::engine::InferContext::vote_single`]. This module keeps
//! the voting core itself plus the legacy free-function shim.

use crate::config::{VotingConfig, VotingScheme};
use crate::infer::engine::InferContext;
use crate::lattice::{MatchScratch, MetaRuleId, Mrsl};
use crate::model::MrslModel;
use mrsl_relation::{AttrId, AttrMask, PartialTuple};

/// Algorithm 2: estimates the CPD over the values of `attr` for tuple `t`.
///
/// The evidence is the complete portion of `t` (any other missing
/// attributes are simply absent from the evidence). The returned vector is
/// strictly positive and sums to 1; the root meta-rule guarantees at least
/// one voter.
///
/// # Panics
/// Panics if `attr` is assigned in `t`.
#[deprecated(
    since = "0.1.0",
    note = "create an `InferContext` and call `vote_single` (or use the `SingleVoting` engine) \
            so match scratch is reused across calls"
)]
pub fn infer_single(
    model: &MrslModel,
    t: &PartialTuple,
    attr: AttrId,
    voting: &VotingConfig,
) -> Vec<f64> {
    InferContext::new(model, *voting, 0).vote_single(t, attr)
}

/// Allocation-light voting core shared by the context and the Gibbs
/// sampler: matches voters against a raw evidence assignment and writes
/// the combined CPD into `out`.
pub(crate) fn vote(
    mrsl: &Mrsl,
    values: &[u16],
    evidence_mask: AttrMask,
    voting: &VotingConfig,
    scratch: &mut MatchScratch,
    out: &mut Vec<f64>,
) {
    mrsl.collect_matches(values, evidence_mask, voting.choice, scratch);
    combine(mrsl, &scratch.matches, voting.scheme, out);
}

/// Combines the voters' CPDs per the voting scheme.
fn combine(mrsl: &Mrsl, voters: &[u32], scheme: VotingScheme, out: &mut Vec<f64>) {
    let k = mrsl.cardinality();
    out.clear();
    out.resize(k, 0.0);
    debug_assert!(!voters.is_empty(), "the root always matches");
    let mut total_weight = 0.0f64;
    for &id in voters {
        let rule = mrsl.rule(MetaRuleId(id));
        let w = match scheme {
            VotingScheme::Averaged => 1.0,
            VotingScheme::Weighted => rule.weight(),
        };
        total_weight += w;
        for (acc, &p) in out.iter_mut().zip(rule.cpd()) {
            *acc += w * p;
        }
    }
    // Voters' CPDs are normalized, so dividing by the total weight
    // renormalizes; a final pass guards against floating-point drift.
    let norm: f64 = out.iter().sum::<f64>().max(f64::MIN_POSITIVE);
    debug_assert!(total_weight > 0.0);
    out.iter_mut().for_each(|p| *p /= norm);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LearnConfig;
    use crate::model::MrslModel;
    use mrsl_relation::relation::fig1_relation;

    fn model(theta: f64) -> MrslModel {
        let rel = fig1_relation();
        MrslModel::learn(
            rel.schema(),
            rel.complete_part(),
            &LearnConfig {
                support_threshold: theta,
                max_itemsets: 1000,
            },
        )
    }

    fn single(m: &MrslModel, t: &PartialTuple, attr: AttrId, voting: VotingConfig) -> Vec<f64> {
        InferContext::new(m, voting, 0).vote_single(t, attr)
    }

    #[test]
    fn produces_positive_normalized_cpds() {
        let m = model(0.01);
        let t = PartialTuple::from_options(&[None, Some(0), Some(0), Some(1)]);
        for voting in VotingConfig::table2_order() {
            let cpd = single(&m, &t, AttrId(0), voting);
            assert_eq!(cpd.len(), 3);
            assert!((cpd.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{voting:?}");
            assert!(cpd.iter().all(|&p| p > 0.0), "{voting:?}");
        }
    }

    #[test]
    fn no_evidence_returns_root_cpd() {
        let m = model(0.01);
        let t = PartialTuple::all_missing(4);
        let cpd = single(&m, &t, AttrId(0), VotingConfig::best_averaged());
        let mrsl = m.mrsl(AttrId(0));
        let root = mrsl.rule(mrsl.root());
        for (got, want) in cpd.iter().zip(root.cpd()) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn evidence_moves_the_estimate() {
        // On Fig. 1's Rc, P(age | edu=BS) is flatter in "20" than the
        // marginal: BS co-occurs with ages 20/30/40 once, once, twice.
        let m = model(0.01);
        let marginal = single(
            &m,
            &PartialTuple::all_missing(4),
            AttrId(0),
            VotingConfig::best_averaged(),
        );
        let with_bs = single(
            &m,
            &PartialTuple::from_options(&[None, Some(1), None, None]),
            AttrId(0),
            VotingConfig::best_averaged(),
        );
        assert!(with_bs[0] < marginal[0], "{with_bs:?} vs {marginal:?}");
        // With a single best voter P(age|edu=BS), the estimate follows the
        // mined confidences 1/4, 1/4, 2/4 (before smoothing nudges).
        assert!((with_bs[2] - 0.5).abs() < 0.01, "{with_bs:?}");
    }

    #[test]
    fn voting_methods_differ_when_voters_disagree() {
        let m = model(0.01);
        let t = PartialTuple::from_options(&[None, Some(0), Some(0), Some(1)]);
        let all_avg = single(&m, &t, AttrId(0), VotingConfig::all_averaged());
        let best_avg = single(&m, &t, AttrId(0), VotingConfig::best_averaged());
        let all_w = single(&m, &t, AttrId(0), VotingConfig::all_weighted());
        // The sets of voters differ (5 vs fewer), so generally the CPDs do.
        let diff: f64 = all_avg
            .iter()
            .zip(&best_avg)
            .map(|(a, b)| (a - b).abs())
            .sum();
        let diff_w: f64 = all_avg.iter().zip(&all_w).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6 || diff_w > 1e-6, "voting had no effect at all");
    }

    #[test]
    #[should_panic(expected = "not missing")]
    fn rejects_assigned_attribute() {
        let m = model(0.01);
        let t = PartialTuple::from_options(&[Some(0), None, None, None]);
        single(&m, &t, AttrId(0), VotingConfig::default());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn weighted_voting_respects_weights() {
        // Weighted average must lie between min and max voter CPD values
        // and lean toward the heavier voter.
        let m = model(0.01);
        let t = PartialTuple::from_options(&[None, Some(0), None, None]);
        let mrsl = m.mrsl(AttrId(0));
        let voters = mrsl.matching(&t, crate::config::VoterChoice::All);
        assert!(voters.len() >= 2);
        let weighted = single(&m, &t, AttrId(0), VotingConfig::all_weighted());
        for v in 0..3 {
            let lo = voters
                .iter()
                .map(|&id| mrsl.rule(id).cpd()[v])
                .fold(f64::INFINITY, f64::min);
            let hi = voters
                .iter()
                .map(|&id| mrsl.rule(id).cpd()[v])
                .fold(0.0, f64::max);
            assert!(weighted[v] >= lo - 1e-9 && weighted[v] <= hi + 1e-9);
        }
    }

    /// Argument-wiring check only (the shim delegates to `vote_single`);
    /// the voting semantics are verified against ground truth by the
    /// tests above.
    #[test]
    #[allow(deprecated)]
    fn shim_wires_voting_through_to_the_context() {
        let m = model(0.01);
        let t = PartialTuple::from_options(&[None, Some(0), Some(0), Some(1)]);
        for voting in VotingConfig::table2_order() {
            let legacy = infer_single(&m, &t, AttrId(0), &voting);
            let modern = single(&m, &t, AttrId(0), voting);
            assert_eq!(legacy, modern, "{voting:?}");
        }
    }
}
