//! Workload-driven sampling with the tuple DAG (§V-B, Algorithm 3).
//!
//! Tuples related by subsumption can reuse each other's samples: when `r`
//! subsumes `s` (`s ≺ r`), every point sampled for `r` that agrees with
//! `s`'s assignments is also a valid sample for `s`. The tuple DAG orders
//! the distinct workload tuples by subsumption (cover edges only); roots —
//! tuples subsumed by no other — are sampled round-robin, and on completion
//! their samples propagate to subsumees. Subsumees left short of `N`
//! samples after all their parents complete are promoted to roots and top
//! up with their own chains.

use crate::config::GibbsConfig;
use crate::infer::gibbs::{GibbsChain, JointEstimate};
use crate::model::MrslModel;
use mrsl_relation::{JointIndexer, PartialTuple};
use mrsl_util::{derive_seed, FxHashMap, Stopwatch};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Duration;

/// How a workload of incomplete tuples is sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadStrategy {
    /// One independent chain per distinct tuple (the paper's baseline).
    TupleAtATime,
    /// Algorithm 3: subsumption-driven sample sharing.
    TupleDag,
}

/// Sampling-cost counters for the Fig. 11 comparison.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SamplingCost {
    /// Gibbs sweeps performed, including burn-in — the paper's
    /// "sample size: the total number of sampled points".
    pub total_draws: usize,
    /// Sweeps spent on burn-in.
    pub burn_in_draws: usize,
    /// Samples obtained for free by sharing along DAG edges.
    pub shared_samples: usize,
    /// Number of chains started.
    pub chains: usize,
    /// Wall-clock time of the sampling phase.
    pub elapsed: Duration,
}

/// Result of sampling a workload.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// One estimate per workload entry (duplicates share the estimate).
    pub estimates: Vec<JointEstimate>,
    /// Cost counters.
    pub cost: SamplingCost,
}

/// The tuple DAG over a deduplicated workload.
#[derive(Debug, Clone)]
pub struct TupleDag {
    nodes: Vec<PartialTuple>,
    parents: Vec<Vec<usize>>,
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
    /// Maps each workload entry to its node.
    workload_nodes: Vec<usize>,
}

impl TupleDag {
    /// Builds the DAG: deduplicates the workload, computes subsumption and
    /// keeps only cover edges (a parent is a maximal subsumer).
    pub fn build(workload: &[PartialTuple]) -> Self {
        let mut node_of: FxHashMap<&PartialTuple, usize> = FxHashMap::default();
        let mut nodes: Vec<PartialTuple> = Vec::new();
        let mut workload_nodes = Vec::with_capacity(workload.len());
        for t in workload {
            let idx = *node_of.entry(t).or_insert_with(|| {
                nodes.push(t.clone());
                nodes.len() - 1
            });
            workload_nodes.push(idx);
        }

        let n = nodes.len();
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for s in 0..n {
            // All subsumers of s…
            let subsumers: Vec<usize> = (0..n)
                .filter(|&r| r != s && nodes[r].subsumes(&nodes[s]))
                .collect();
            // …of which the maximal ones (not themselves subsuming another
            // subsumer… i.e. not subsumed-by-larger: r is a cover parent iff
            // no other subsumer m of s is subsumed by r).
            for &r in &subsumers {
                let covered = subsumers
                    .iter()
                    .any(|&m| m != r && nodes[r].subsumes(&nodes[m]));
                if !covered {
                    parents[s].push(r);
                    children[r].push(s);
                }
            }
        }
        let roots = (0..n).filter(|&i| parents[i].is_empty()).collect();
        Self {
            nodes,
            parents,
            children,
            roots,
            workload_nodes,
        }
    }

    /// Number of distinct tuples (DAG nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the workload was empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The distinct tuples.
    pub fn nodes(&self) -> &[PartialTuple] {
        &self.nodes
    }

    /// Initial roots: nodes not subsumed by any other node.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Cover parents of a node.
    pub fn parents(&self, i: usize) -> &[usize] {
        &self.parents[i]
    }

    /// Cover children of a node.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Node index of each workload entry.
    pub fn workload_nodes(&self) -> &[usize] {
        &self.workload_nodes
    }
}

/// Per-node sampling state.
struct NodeState {
    indexer: JointIndexer,
    counts: Vec<u32>,
    /// Recorded full-arity points (kept for sharing with children).
    points: Vec<Box<[u16]>>,
    completed: bool,
    pending_parents: usize,
}

impl NodeState {
    fn samples(&self) -> usize {
        self.points.len()
    }

    fn record(&mut self, point: &[u16]) {
        let mut idx = 0usize;
        // Index the point over the node's missing attributes.
        let combo: Vec<mrsl_relation::ValueId> = self
            .indexer
            .attrs()
            .iter()
            .map(|a| mrsl_relation::ValueId(point[a.index()]))
            .collect();
        idx += self.indexer.index_of(&combo);
        self.counts[idx] += 1;
        self.points.push(point.into());
    }
}

/// Samples a workload of incomplete tuples (§V, Algorithm 3 when
/// `strategy == TupleDag`).
///
/// Returns one [`JointEstimate`] per workload entry; duplicate tuples share
/// their estimate. Deterministic per `seed`.
pub fn sample_workload(
    model: &MrslModel,
    workload: &[PartialTuple],
    config: &GibbsConfig,
    strategy: WorkloadStrategy,
    seed: u64,
) -> WorkloadResult {
    let sw = Stopwatch::start();
    let dag = TupleDag::build(workload);
    let mut cost = SamplingCost::default();

    let mut states: Vec<NodeState> = dag
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let indexer = JointIndexer::new(model.schema(), t.missing_mask());
            NodeState {
                counts: vec![0u32; indexer.size()],
                indexer,
                points: Vec::new(),
                completed: false,
                pending_parents: if strategy == WorkloadStrategy::TupleDag {
                    dag.parents(i).len()
                } else {
                    0
                },
            }
        })
        .collect();

    // Trivial nodes (nothing missing) complete immediately.
    for (i, t) in dag.nodes().iter().enumerate() {
        if t.is_complete() {
            states[i].completed = true;
        }
    }

    match strategy {
        WorkloadStrategy::TupleAtATime => {
            for (i, t) in dag.nodes().iter().enumerate() {
                if states[i].completed {
                    continue;
                }
                let mut chain =
                    GibbsChain::new(model, t, config.voting, derive_seed(seed, &[i as u64]));
                cost.chains += 1;
                for _ in 0..config.burn_in {
                    chain.sweep();
                }
                cost.burn_in_draws += config.burn_in;
                cost.total_draws += config.burn_in;
                for _ in 0..config.samples {
                    let point = chain.sweep().to_vec().into_boxed_slice();
                    states[i].record(&point);
                    cost.total_draws += 1;
                }
                states[i].completed = true;
            }
        }
        WorkloadStrategy::TupleDag => {
            run_dag_schedule(model, &dag, &mut states, config, seed, &mut cost);
        }
    }

    let estimates: Vec<JointEstimate> = dag
        .workload_nodes()
        .iter()
        .map(|&node| make_estimate(&states[node]))
        .collect();
    cost.elapsed = sw.elapsed();
    WorkloadResult { estimates, cost }
}

/// The round-robin root schedule of Algorithm 3.
fn run_dag_schedule(
    model: &MrslModel,
    dag: &TupleDag,
    states: &mut [NodeState],
    config: &GibbsConfig,
    seed: u64,
    cost: &mut SamplingCost,
) {
    let mut active: VecDeque<usize> = dag
        .roots()
        .iter()
        .copied()
        .filter(|&i| !states[i].completed)
        .collect();
    let mut chains: FxHashMap<usize, GibbsChain<'_>> = FxHashMap::default();

    // Completions to propagate (explicit worklist instead of recursion).
    let mut done_queue: Vec<usize> = Vec::new();

    // Trivially completed nodes (complete tuples) still count as completed
    // parents for promotion purposes.
    for (i, state) in states.iter().enumerate() {
        if state.completed {
            done_queue.push(i);
        }
    }
    propagate_completions(dag, states, config, cost, &mut active, &mut done_queue);

    while let Some(r) = active.pop_front() {
        if states[r].completed {
            continue;
        }
        let chain = chains.entry(r).or_insert_with(|| {
            cost.chains += 1;
            let mut chain = GibbsChain::new(
                model,
                &dag.nodes()[r],
                config.voting,
                derive_seed(seed, &[r as u64]),
            );
            // Lines 6–8: burn-in on first visit, samples discarded.
            for _ in 0..config.burn_in {
                chain.sweep();
            }
            cost.burn_in_draws += config.burn_in;
            cost.total_draws += config.burn_in;
            chain
        });
        // Line 9: one recorded sample per visit.
        let point = chain.sweep().to_vec().into_boxed_slice();
        cost.total_draws += 1;
        states[r].record(&point);
        if states[r].samples() >= config.samples {
            // Lines 10–21: completion and sample sharing.
            states[r].completed = true;
            chains.remove(&r);
            done_queue.push(r);
            propagate_completions(dag, states, config, cost, &mut active, &mut done_queue);
        } else {
            active.push_back(r);
        }
    }
}

/// `ShareSamples` + root promotion: drains the completion worklist,
/// sharing each completed node's points with its children.
fn propagate_completions(
    dag: &TupleDag,
    states: &mut [NodeState],
    config: &GibbsConfig,
    cost: &mut SamplingCost,
    active: &mut VecDeque<usize>,
    done_queue: &mut Vec<usize>,
) {
    while let Some(r) = done_queue.pop() {
        for &s in dag.children(r) {
            if states[s].completed {
                continue;
            }
            // Share matching samples (only as many as still needed).
            let child_tuple = &dag.nodes()[s];
            let needed = config.samples.saturating_sub(states[s].samples());
            if needed > 0 {
                let parent_points: Vec<Box<[u16]>> = states[r]
                    .points
                    .iter()
                    .filter(|p| point_matches(p, child_tuple))
                    .take(needed)
                    .cloned()
                    .collect();
                for p in parent_points {
                    states[s].record(&p);
                    cost.shared_samples += 1;
                }
            }
            states[s].pending_parents = states[s].pending_parents.saturating_sub(1);
            if states[s].samples() >= config.samples {
                states[s].completed = true;
                done_queue.push(s);
            } else if states[s].pending_parents == 0 {
                // Promotion to root: tops up with its own chain.
                active.push_back(s);
            }
        }
    }
}

/// Does the full point agree with the tuple's assignments?
#[inline]
fn point_matches(point: &[u16], t: &PartialTuple) -> bool {
    t.assignments()
        .all(|asg| point[asg.attr.index()] == asg.value.0)
}

fn make_estimate(state: &NodeState) -> JointEstimate {
    let n: u32 = state.counts.iter().sum();
    let probs = if state.indexer.size() == 1 {
        vec![1.0]
    } else if n == 0 {
        // Unreachable through the public API; keep a sane fallback.
        vec![1.0 / state.counts.len() as f64; state.counts.len()]
    } else {
        state
            .counts
            .iter()
            .map(|&c| c as f64 / n as f64)
            .collect()
    };
    JointEstimate {
        indexer: state.indexer.clone(),
        probs,
        sample_count: n as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LearnConfig, VotingConfig};
    use mrsl_relation::relation::fig1_relation;

    fn model() -> MrslModel {
        let rel = fig1_relation();
        MrslModel::learn(
            rel.schema(),
            rel.complete_part(),
            &LearnConfig {
                support_threshold: 0.01,
                max_itemsets: 1000,
            },
        )
    }

    fn cfg(burn: usize, n: usize) -> GibbsConfig {
        GibbsConfig {
            burn_in: burn,
            samples: n,
            voting: VotingConfig::best_averaged(),
        }
    }

    /// The Fig. 3 workload: t1, t3, t5, t8, t11, t12.
    fn fig3_workload() -> Vec<PartialTuple> {
        vec![
            PartialTuple::from_options(&[Some(0), Some(0), None, None]), // t1 ⟨20,HS,?,?⟩
            PartialTuple::from_options(&[Some(0), None, Some(0), None]), // t3 ⟨20,?,50K,?⟩
            PartialTuple::from_options(&[Some(0), None, None, None]),    // t5 ⟨20,?,?,?⟩
            PartialTuple::from_options(&[None, Some(0), None, None]),    // t8 ⟨?,HS,?,?⟩
            PartialTuple::from_options(&[Some(1), Some(0), None, None]), // t11 ⟨30,HS,?,?⟩
            PartialTuple::from_options(&[Some(1), Some(2), None, None]), // t12 ⟨30,MS,?,?⟩
        ]
    }

    #[test]
    fn dag_matches_fig3_structure() {
        let dag = TupleDag::build(&fig3_workload());
        assert_eq!(dag.len(), 6);
        // Roots: t5, t8 and t12 (t12's portion ⟨30, MS⟩ is subsumed by
        // neither t5 ⟨20⟩ nor t8 ⟨HS⟩).
        let mut roots: Vec<usize> = dag.roots().to_vec();
        roots.sort_unstable();
        assert_eq!(roots, vec![2, 3, 5]);
        // t1 has parents t5 and t8; t3 only t5; t11 only t8.
        let mut t1_parents = dag.parents(0).to_vec();
        t1_parents.sort_unstable();
        assert_eq!(t1_parents, vec![2, 3]);
        assert_eq!(dag.parents(1), &[2]);
        assert_eq!(dag.parents(4), &[3]);
    }

    #[test]
    fn dag_keeps_only_cover_edges() {
        // a ⟨?,?,?,?⟩ subsumes b ⟨20,?,?,?⟩ subsumes c ⟨20,HS,?,?⟩;
        // a → c must not be a direct edge.
        let a = PartialTuple::all_missing(4);
        let b = PartialTuple::from_options(&[Some(0), None, None, None]);
        let c = PartialTuple::from_options(&[Some(0), Some(0), None, None]);
        let dag = TupleDag::build(&[a, b, c]);
        assert_eq!(dag.roots(), &[0]);
        assert_eq!(dag.children(0), &[1]);
        assert_eq!(dag.children(1), &[2]);
        assert_eq!(dag.parents(2), &[1]);
    }

    #[test]
    fn dag_deduplicates_workload() {
        let t = PartialTuple::from_options(&[Some(0), None, None, None]);
        let dag = TupleDag::build(&[t.clone(), t.clone(), t]);
        assert_eq!(dag.len(), 1);
        assert_eq!(dag.workload_nodes(), &[0, 0, 0]);
    }

    #[test]
    fn both_strategies_yield_full_sample_counts() {
        let m = model();
        let workload = fig3_workload();
        for strategy in [WorkloadStrategy::TupleAtATime, WorkloadStrategy::TupleDag] {
            let res = sample_workload(&m, &workload, &cfg(20, 100), strategy, 3);
            assert_eq!(res.estimates.len(), workload.len());
            for (i, est) in res.estimates.iter().enumerate() {
                assert_eq!(est.sample_count, 100, "tuple {i} under {strategy:?}");
                assert!((est.probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dag_reduces_sampling_cost() {
        let m = model();
        let workload = fig3_workload();
        let base = sample_workload(
            &m,
            &workload,
            &cfg(50, 200),
            WorkloadStrategy::TupleAtATime,
            3,
        );
        let dag = sample_workload(&m, &workload, &cfg(50, 200), WorkloadStrategy::TupleDag, 3);
        assert!(
            dag.cost.total_draws < base.cost.total_draws,
            "dag {} vs baseline {}",
            dag.cost.total_draws,
            base.cost.total_draws
        );
        assert!(dag.cost.shared_samples > 0);
        assert!(dag.cost.chains < base.cost.chains);
        // Baseline cost is exactly |distinct| × (B + N).
        assert_eq!(base.cost.total_draws, 6 * 250);
        assert_eq!(base.cost.burn_in_draws, 6 * 50);
    }

    #[test]
    fn shared_samples_respect_subsumee_assignments() {
        // After sampling, estimates for t1 ⟨20,HS,?,?⟩ must only weigh
        // combinations over {inc, nw} — its indexer has 4 cells.
        let m = model();
        let res = sample_workload(
            &m,
            &fig3_workload(),
            &cfg(20, 150),
            WorkloadStrategy::TupleDag,
            9,
        );
        assert_eq!(res.estimates[0].indexer.size(), 4);
        assert_eq!(res.estimates[2].indexer.size(), 12); // t5: edu×inc×nw
    }

    #[test]
    fn duplicate_tuples_share_one_estimate() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(0), None, Some(0), None]);
        let res = sample_workload(
            &m,
            &[t.clone(), t],
            &cfg(10, 80),
            WorkloadStrategy::TupleDag,
            1,
        );
        assert_eq!(res.estimates[0].probs, res.estimates[1].probs);
        // Only one chain ran.
        assert_eq!(res.cost.chains, 1);
    }

    #[test]
    fn empty_workload_is_fine() {
        let m = model();
        let res = sample_workload(&m, &[], &cfg(10, 50), WorkloadStrategy::TupleDag, 0);
        assert!(res.estimates.is_empty());
        assert_eq!(res.cost.total_draws, 0);
    }

    #[test]
    fn complete_tuples_get_trivial_estimates() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(0), Some(0), Some(0), Some(0)]);
        let res = sample_workload(&m, &[t], &cfg(10, 50), WorkloadStrategy::TupleDag, 0);
        assert_eq!(res.estimates[0].probs, vec![1.0]);
        assert_eq!(res.cost.chains, 0);
    }

    #[test]
    fn strategies_agree_on_estimates_within_tolerance() {
        // "We compared the accuracy of tuple-DAG to tuple-at-a-time, and,
        // as expected, found no difference" — estimates must agree up to
        // Monte-Carlo noise.
        let m = model();
        let workload = vec![
            PartialTuple::from_options(&[Some(0), Some(0), None, None]),
            PartialTuple::from_options(&[Some(0), None, None, None]),
        ];
        let a = sample_workload(
            &m,
            &workload,
            &cfg(100, 3000),
            WorkloadStrategy::TupleAtATime,
            5,
        );
        let b = sample_workload(&m, &workload, &cfg(100, 3000), WorkloadStrategy::TupleDag, 5);
        for (ea, eb) in a.estimates.iter().zip(&b.estimates) {
            for (pa, pb) in ea.probs.iter().zip(&eb.probs) {
                assert!((pa - pb).abs() < 0.06, "{pa} vs {pb}");
            }
        }
    }
}
