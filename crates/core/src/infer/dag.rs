//! Workload-driven sampling with the tuple DAG (§V-B, Algorithm 3).
//!
//! Tuples related by subsumption can reuse each other's samples: when `r`
//! subsumes `s` (`s ≺ r`), every point sampled for `r` that agrees with
//! `s`'s assignments is also a valid sample for `s`. The tuple DAG orders
//! the distinct workload tuples by subsumption (cover edges only); roots —
//! tuples subsumed by no other — are sampled round-robin, and on completion
//! their samples propagate to subsumees. Subsumees left short of `N`
//! samples after all their parents complete are promoted to roots and top
//! up with their own chains.
//!
//! Sample sharing only ever crosses cover edges, so the *connected
//! components* of the DAG are independent sampling problems. The workload
//! runner exploits that: components fan out over the shared rayon executor
//! while the round-robin schedule inside each component stays sequential.
//! Chain seeds derive from global node indices, making results
//! bit-identical for any thread count. The engine wrapper is
//! [`crate::infer::engine::TupleDagWorkload`].

use crate::config::{GibbsConfig, VotingConfig};
use crate::infer::engine::{GibbsSampler, InferContext, InferenceEngine, TupleDagWorkload};
use crate::infer::gibbs::{GibbsChain, JointEstimate};
use crate::model::MrslModel;
use mrsl_relation::{JointIndexer, PartialTuple};
use mrsl_util::{derive_seed, FxHashMap, Stopwatch};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Duration;

/// How a workload of incomplete tuples is sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadStrategy {
    /// One independent chain per distinct tuple (the paper's baseline).
    TupleAtATime,
    /// Algorithm 3: subsumption-driven sample sharing.
    TupleDag,
}

/// Sampling-cost counters for the Fig. 11 comparison.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SamplingCost {
    /// Gibbs sweeps performed, including burn-in — the paper's
    /// "sample size: the total number of sampled points".
    pub total_draws: usize,
    /// Sweeps spent on burn-in.
    pub burn_in_draws: usize,
    /// Samples obtained for free by sharing along DAG edges.
    pub shared_samples: usize,
    /// Number of chains started.
    pub chains: usize,
    /// Wall-clock time of the sampling phase.
    pub elapsed: Duration,
}

impl SamplingCost {
    /// Adds `other`'s counters into `self` (elapsed times add too; the
    /// batch layer overwrites `elapsed` with the wall-clock afterwards).
    pub fn absorb(&mut self, other: &SamplingCost) {
        self.total_draws += other.total_draws;
        self.burn_in_draws += other.burn_in_draws;
        self.shared_samples += other.shared_samples;
        self.chains += other.chains;
        self.elapsed += other.elapsed;
    }
}

/// Result of estimating a workload: one estimate per workload entry plus
/// aggregate sampling cost. This is the output type of every batch path
/// (`infer_batch` and the engines' `estimate_batch`).
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// One estimate per workload entry (duplicates share the estimate).
    pub estimates: Vec<JointEstimate>,
    /// Cost counters.
    pub cost: SamplingCost,
}

/// The tuple DAG over a deduplicated workload.
#[derive(Debug, Clone)]
pub struct TupleDag {
    nodes: Vec<PartialTuple>,
    parents: Vec<Vec<usize>>,
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
    /// Maps each workload entry to its node.
    workload_nodes: Vec<usize>,
}

impl TupleDag {
    /// Builds the DAG: deduplicates the workload, computes subsumption and
    /// keeps only cover edges (a parent is a maximal subsumer).
    pub fn build(workload: &[PartialTuple]) -> Self {
        let mut node_of: FxHashMap<&PartialTuple, usize> = FxHashMap::default();
        let mut nodes: Vec<PartialTuple> = Vec::new();
        let mut workload_nodes = Vec::with_capacity(workload.len());
        for t in workload {
            let idx = *node_of.entry(t).or_insert_with(|| {
                nodes.push(t.clone());
                nodes.len() - 1
            });
            workload_nodes.push(idx);
        }

        let n = nodes.len();
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for s in 0..n {
            // All subsumers of s…
            let subsumers: Vec<usize> = (0..n)
                .filter(|&r| r != s && nodes[r].subsumes(&nodes[s]))
                .collect();
            // …of which the maximal ones (not themselves subsuming another
            // subsumer… i.e. not subsumed-by-larger: r is a cover parent iff
            // no other subsumer m of s is subsumed by r).
            for &r in &subsumers {
                let covered = subsumers
                    .iter()
                    .any(|&m| m != r && nodes[r].subsumes(&nodes[m]));
                if !covered {
                    parents[s].push(r);
                    children[r].push(s);
                }
            }
        }
        let roots = (0..n).filter(|&i| parents[i].is_empty()).collect();
        Self {
            nodes,
            parents,
            children,
            roots,
            workload_nodes,
        }
    }

    /// Number of distinct tuples (DAG nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the workload was empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The distinct tuples.
    pub fn nodes(&self) -> &[PartialTuple] {
        &self.nodes
    }

    /// Initial roots: nodes not subsumed by any other node.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Cover parents of a node.
    pub fn parents(&self, i: usize) -> &[usize] {
        &self.parents[i]
    }

    /// Cover children of a node.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Node index of each workload entry.
    pub fn workload_nodes(&self) -> &[usize] {
        &self.workload_nodes
    }

    /// Connected components of the cover-edge graph, each ascending by
    /// node index; components ordered by their smallest node. Sample
    /// sharing never crosses components, so they are independent sampling
    /// problems.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut component = vec![usize::MAX; n];
        let mut components = Vec::new();
        for start in 0..n {
            if component[start] != usize::MAX {
                continue;
            }
            let id = components.len();
            let mut members = vec![start];
            component[start] = id;
            let mut stack = vec![start];
            while let Some(i) = stack.pop() {
                for &j in self.parents(i).iter().chain(self.children(i)) {
                    if component[j] == usize::MAX {
                        component[j] = id;
                        members.push(j);
                        stack.push(j);
                    }
                }
            }
            members.sort_unstable();
            components.push(members);
        }
        components
    }
}

/// Per-node sampling state.
struct NodeState {
    indexer: JointIndexer,
    counts: Vec<u32>,
    /// Recorded full-arity points (kept for sharing with children).
    points: Vec<Box<[u16]>>,
    completed: bool,
    pending_parents: usize,
}

impl NodeState {
    fn samples(&self) -> usize {
        self.points.len()
    }

    fn record(&mut self, point: &[u16]) {
        let combo: Vec<mrsl_relation::ValueId> = self
            .indexer
            .attrs()
            .iter()
            .map(|a| mrsl_relation::ValueId(point[a.index()]))
            .collect();
        self.counts[self.indexer.index_of(&combo)] += 1;
        self.points.push(point.into());
    }
}

/// Runs Algorithm 3 over a workload: builds the tuple DAG once, then
/// samples its connected components in parallel on the shared executor.
///
/// Deterministic for a given `seed` regardless of thread count: chain
/// seeds derive from global node indices and components are independent.
pub(crate) fn run_workload_dag(
    model: &MrslModel,
    voting: VotingConfig,
    burn_in: usize,
    samples: usize,
    workload: &[PartialTuple],
    seed: u64,
) -> WorkloadResult {
    let sw = Stopwatch::start();
    let dag = TupleDag::build(workload);
    let components = dag.components();

    let per_component: Vec<(Vec<(usize, JointEstimate)>, SamplingCost)> = components
        .into_par_iter()
        .map(|nodes| sample_component(model, voting, burn_in, samples, &dag, &nodes, seed))
        .collect();

    let mut node_estimates: Vec<Option<JointEstimate>> = vec![None; dag.len()];
    let mut cost = SamplingCost::default();
    for (estimates, component_cost) in per_component {
        cost.absorb(&component_cost);
        for (node, est) in estimates {
            node_estimates[node] = Some(est);
        }
    }
    let estimates = dag
        .workload_nodes()
        .iter()
        .map(|&node| {
            node_estimates[node]
                .clone()
                .expect("every node belongs to exactly one component")
        })
        .collect();
    cost.elapsed = sw.elapsed();
    WorkloadResult { estimates, cost }
}

/// The round-robin root schedule of Algorithm 3, restricted to one
/// connected component (`nodes`, ascending). Returns the estimates of the
/// component's nodes and the component's sampling cost.
fn sample_component(
    model: &MrslModel,
    voting: VotingConfig,
    burn_in: usize,
    samples: usize,
    dag: &TupleDag,
    nodes: &[usize],
    seed: u64,
) -> (Vec<(usize, JointEstimate)>, SamplingCost) {
    let mut ctx = InferContext::new(model, voting, seed);
    let mut cost = SamplingCost::default();
    let mut states: FxHashMap<usize, NodeState> = nodes
        .iter()
        .map(|&i| {
            let tuple = &dag.nodes()[i];
            let indexer = JointIndexer::new(model.schema(), tuple.missing_mask());
            let state = NodeState {
                counts: vec![0u32; indexer.size()],
                indexer,
                points: Vec::new(),
                completed: tuple.is_complete(),
                pending_parents: dag.parents(i).len(),
            };
            (i, state)
        })
        .collect();

    // Roots first (ascending, matching the global schedule's visit order);
    // trivially-completed nodes propagate before any sampling happens.
    let mut active: VecDeque<usize> = nodes
        .iter()
        .copied()
        .filter(|&i| dag.parents(i).is_empty() && !states[&i].completed)
        .collect();
    let mut chains: FxHashMap<usize, GibbsChain> = FxHashMap::default();
    let mut done_queue: Vec<usize> = nodes
        .iter()
        .copied()
        .filter(|&i| states[&i].completed)
        .collect();
    propagate_completions(
        dag,
        &mut states,
        samples,
        &mut cost,
        &mut active,
        &mut done_queue,
    );

    while let Some(r) = active.pop_front() {
        if states[&r].completed {
            continue;
        }
        let chain = chains.entry(r).or_insert_with(|| {
            cost.chains += 1;
            let mut chain = GibbsChain::new(model, &dag.nodes()[r], derive_seed(seed, &[r as u64]));
            // Lines 6–8: burn-in on first visit, samples discarded.
            for _ in 0..burn_in {
                chain.sweep(&mut ctx);
            }
            cost.burn_in_draws += burn_in;
            cost.total_draws += burn_in;
            chain
        });
        // Line 9: one recorded sample per visit.
        let point = chain.sweep(&mut ctx).to_vec().into_boxed_slice();
        cost.total_draws += 1;
        let state = states.get_mut(&r).expect("active node is in the component");
        state.record(&point);
        if state.samples() >= samples {
            // Lines 10–21: completion and sample sharing.
            state.completed = true;
            chains.remove(&r);
            done_queue.push(r);
            propagate_completions(
                dag,
                &mut states,
                samples,
                &mut cost,
                &mut active,
                &mut done_queue,
            );
        } else {
            active.push_back(r);
        }
    }

    let estimates = nodes
        .iter()
        .map(|&i| (i, make_estimate(&states[&i])))
        .collect();
    (estimates, cost)
}

/// `ShareSamples` + root promotion: drains the completion worklist,
/// sharing each completed node's points with its children.
fn propagate_completions(
    dag: &TupleDag,
    states: &mut FxHashMap<usize, NodeState>,
    samples: usize,
    cost: &mut SamplingCost,
    active: &mut VecDeque<usize>,
    done_queue: &mut Vec<usize>,
) {
    while let Some(r) = done_queue.pop() {
        for &s in dag.children(r) {
            if states[&s].completed {
                continue;
            }
            // Share matching samples (only as many as still needed).
            let child_tuple = &dag.nodes()[s];
            let needed = samples.saturating_sub(states[&s].samples());
            if needed > 0 {
                let parent_points: Vec<Box<[u16]>> = states[&r]
                    .points
                    .iter()
                    .filter(|p| point_matches(p, child_tuple))
                    .take(needed)
                    .cloned()
                    .collect();
                let child = states.get_mut(&s).expect("child is in the component");
                for p in parent_points {
                    child.record(&p);
                    cost.shared_samples += 1;
                }
            }
            let child = states.get_mut(&s).expect("child is in the component");
            child.pending_parents = child.pending_parents.saturating_sub(1);
            if child.samples() >= samples {
                child.completed = true;
                done_queue.push(s);
            } else if child.pending_parents == 0 {
                // Promotion to root: tops up with its own chain.
                active.push_back(s);
            }
        }
    }
}

/// Does the full point agree with the tuple's assignments?
#[inline]
fn point_matches(point: &[u16], t: &PartialTuple) -> bool {
    t.assignments()
        .all(|asg| point[asg.attr.index()] == asg.value.0)
}

fn make_estimate(state: &NodeState) -> JointEstimate {
    let n: u32 = state.counts.iter().sum();
    let probs = if state.indexer.size() == 1 {
        vec![1.0]
    } else if n == 0 {
        // Unreachable through the public API; keep a sane fallback.
        vec![1.0 / state.counts.len() as f64; state.counts.len()]
    } else {
        state.counts.iter().map(|&c| c as f64 / n as f64).collect()
    };
    JointEstimate {
        indexer: state.indexer.clone(),
        probs,
        sample_count: n as usize,
    }
}

/// Samples a workload of incomplete tuples (§V, Algorithm 3 when
/// `strategy == TupleDag`).
///
/// Returns one [`JointEstimate`] per workload entry; duplicate tuples share
/// their estimate. Deterministic per `seed`.
#[deprecated(
    since = "0.1.0",
    note = "use `infer_batch` with a `GibbsSampler` or `TupleDagWorkload` engine"
)]
pub fn sample_workload(
    model: &MrslModel,
    workload: &[PartialTuple],
    config: &GibbsConfig,
    strategy: WorkloadStrategy,
    seed: u64,
) -> WorkloadResult {
    let engine = workload_engine(strategy, config);
    engine.estimate_batch(model, config.voting, workload, seed)
}

/// The engine implementing a [`WorkloadStrategy`] with a
/// [`GibbsConfig`]'s chain parameters.
pub fn workload_engine(
    strategy: WorkloadStrategy,
    config: &GibbsConfig,
) -> Box<dyn InferenceEngine> {
    match strategy {
        WorkloadStrategy::TupleAtATime => Box::new(GibbsSampler::from_config(config)),
        WorkloadStrategy::TupleDag => Box::new(TupleDagWorkload::from_config(config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LearnConfig;
    use crate::infer::batch::infer_batch;

    fn model() -> MrslModel {
        let rel = fig1_relation();
        MrslModel::learn(
            rel.schema(),
            rel.complete_part(),
            &LearnConfig {
                support_threshold: 0.01,
                max_itemsets: 1000,
            },
        )
    }

    use mrsl_relation::relation::fig1_relation;

    fn run(
        m: &MrslModel,
        workload: &[PartialTuple],
        burn: usize,
        n: usize,
        strategy: WorkloadStrategy,
        seed: u64,
    ) -> WorkloadResult {
        let config = GibbsConfig {
            burn_in: burn,
            samples: n,
            voting: VotingConfig::best_averaged(),
        };
        let engine = workload_engine(strategy, &config);
        infer_batch(m, workload, engine.as_ref(), config.voting, seed)
    }

    /// The Fig. 3 workload: t1, t3, t5, t8, t11, t12.
    fn fig3_workload() -> Vec<PartialTuple> {
        vec![
            PartialTuple::from_options(&[Some(0), Some(0), None, None]), // t1 ⟨20,HS,?,?⟩
            PartialTuple::from_options(&[Some(0), None, Some(0), None]), // t3 ⟨20,?,50K,?⟩
            PartialTuple::from_options(&[Some(0), None, None, None]),    // t5 ⟨20,?,?,?⟩
            PartialTuple::from_options(&[None, Some(0), None, None]),    // t8 ⟨?,HS,?,?⟩
            PartialTuple::from_options(&[Some(1), Some(0), None, None]), // t11 ⟨30,HS,?,?⟩
            PartialTuple::from_options(&[Some(1), Some(2), None, None]), // t12 ⟨30,MS,?,?⟩
        ]
    }

    #[test]
    fn dag_matches_fig3_structure() {
        let dag = TupleDag::build(&fig3_workload());
        assert_eq!(dag.len(), 6);
        // Roots: t5, t8 and t12 (t12's portion ⟨30, MS⟩ is subsumed by
        // neither t5 ⟨20⟩ nor t8 ⟨HS⟩).
        let mut roots: Vec<usize> = dag.roots().to_vec();
        roots.sort_unstable();
        assert_eq!(roots, vec![2, 3, 5]);
        // t1 has parents t5 and t8; t3 only t5; t11 only t8.
        let mut t1_parents = dag.parents(0).to_vec();
        t1_parents.sort_unstable();
        assert_eq!(t1_parents, vec![2, 3]);
        assert_eq!(dag.parents(1), &[2]);
        assert_eq!(dag.parents(4), &[3]);
    }

    #[test]
    fn fig3_components_split_t12_from_the_rest() {
        let dag = TupleDag::build(&fig3_workload());
        let components = dag.components();
        assert_eq!(components.len(), 2);
        assert_eq!(components[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(components[1], vec![5]);
    }

    #[test]
    fn dag_keeps_only_cover_edges() {
        // a ⟨?,?,?,?⟩ subsumes b ⟨20,?,?,?⟩ subsumes c ⟨20,HS,?,?⟩;
        // a → c must not be a direct edge.
        let a = PartialTuple::all_missing(4);
        let b = PartialTuple::from_options(&[Some(0), None, None, None]);
        let c = PartialTuple::from_options(&[Some(0), Some(0), None, None]);
        let dag = TupleDag::build(&[a, b, c]);
        assert_eq!(dag.roots(), &[0]);
        assert_eq!(dag.children(0), &[1]);
        assert_eq!(dag.children(1), &[2]);
        assert_eq!(dag.parents(2), &[1]);
        assert_eq!(dag.components(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn dag_deduplicates_workload() {
        let t = PartialTuple::from_options(&[Some(0), None, None, None]);
        let dag = TupleDag::build(&[t.clone(), t.clone(), t]);
        assert_eq!(dag.len(), 1);
        assert_eq!(dag.workload_nodes(), &[0, 0, 0]);
    }

    #[test]
    fn both_strategies_yield_full_sample_counts() {
        let m = model();
        let workload = fig3_workload();
        for strategy in [WorkloadStrategy::TupleAtATime, WorkloadStrategy::TupleDag] {
            let res = run(&m, &workload, 20, 100, strategy, 3);
            assert_eq!(res.estimates.len(), workload.len());
            for (i, est) in res.estimates.iter().enumerate() {
                assert_eq!(est.sample_count, 100, "tuple {i} under {strategy:?}");
                assert!((est.probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dag_reduces_sampling_cost() {
        let m = model();
        let workload = fig3_workload();
        let base = run(&m, &workload, 50, 200, WorkloadStrategy::TupleAtATime, 3);
        let dag = run(&m, &workload, 50, 200, WorkloadStrategy::TupleDag, 3);
        assert!(
            dag.cost.total_draws < base.cost.total_draws,
            "dag {} vs baseline {}",
            dag.cost.total_draws,
            base.cost.total_draws
        );
        assert!(dag.cost.shared_samples > 0);
        assert!(dag.cost.chains < base.cost.chains);
        // Baseline cost is exactly |distinct| × (B + N).
        assert_eq!(base.cost.total_draws, 6 * 250);
        assert_eq!(base.cost.burn_in_draws, 6 * 50);
    }

    #[test]
    fn shared_samples_respect_subsumee_assignments() {
        // After sampling, estimates for t1 ⟨20,HS,?,?⟩ must only weigh
        // combinations over {inc, nw} — its indexer has 4 cells.
        let m = model();
        let res = run(&m, &fig3_workload(), 20, 150, WorkloadStrategy::TupleDag, 9);
        assert_eq!(res.estimates[0].indexer.size(), 4);
        assert_eq!(res.estimates[2].indexer.size(), 12); // t5: edu×inc×nw
    }

    #[test]
    fn duplicate_tuples_share_one_estimate() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(0), None, Some(0), None]);
        let res = run(&m, &[t.clone(), t], 10, 80, WorkloadStrategy::TupleDag, 1);
        assert_eq!(res.estimates[0].probs, res.estimates[1].probs);
        // Only one chain ran.
        assert_eq!(res.cost.chains, 1);
    }

    #[test]
    fn empty_workload_is_fine() {
        let m = model();
        let res = run(&m, &[], 10, 50, WorkloadStrategy::TupleDag, 0);
        assert!(res.estimates.is_empty());
        assert_eq!(res.cost.total_draws, 0);
    }

    #[test]
    fn complete_tuples_get_trivial_estimates() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(0), Some(0), Some(0), Some(0)]);
        let res = run(&m, &[t], 10, 50, WorkloadStrategy::TupleDag, 0);
        assert_eq!(res.estimates[0].probs, vec![1.0]);
        assert_eq!(res.cost.chains, 0);
    }

    #[test]
    fn strategies_agree_on_estimates_within_tolerance() {
        // "We compared the accuracy of tuple-DAG to tuple-at-a-time, and,
        // as expected, found no difference" — estimates must agree up to
        // Monte-Carlo noise.
        let m = model();
        let workload = vec![
            PartialTuple::from_options(&[Some(0), Some(0), None, None]),
            PartialTuple::from_options(&[Some(0), None, None, None]),
        ];
        let a = run(&m, &workload, 100, 3000, WorkloadStrategy::TupleAtATime, 5);
        let b = run(&m, &workload, 100, 3000, WorkloadStrategy::TupleDag, 5);
        for (ea, eb) in a.estimates.iter().zip(&b.estimates) {
            for (pa, pb) in ea.probs.iter().zip(&eb.probs) {
                assert!((pa - pb).abs() < 0.06, "{pa} vs {pb}");
            }
        }
    }

    /// NOT a historic-parity check — `sample_workload` delegates to the
    /// engines, so this guards only the strategy dispatch and argument
    /// wiring. Behavioral preservation is covered by the exact cost
    /// assertions above and the batch-vs-per-tuple reference in
    /// `infer::batch`'s tests.
    #[test]
    #[allow(deprecated)]
    fn shim_dispatches_strategy_and_wires_arguments() {
        let m = model();
        let workload = fig3_workload();
        let config = GibbsConfig {
            burn_in: 30,
            samples: 120,
            voting: VotingConfig::best_averaged(),
        };
        for strategy in [WorkloadStrategy::TupleAtATime, WorkloadStrategy::TupleDag] {
            let legacy = sample_workload(&m, &workload, &config, strategy, 17);
            let engine = workload_engine(strategy, &config);
            let modern = infer_batch(&m, &workload, engine.as_ref(), config.voting, 17);
            for (a, b) in legacy.estimates.iter().zip(&modern.estimates) {
                assert_eq!(a.probs, b.probs, "{strategy:?}");
            }
            assert_eq!(legacy.cost.total_draws, modern.cost.total_draws);
            assert_eq!(legacy.cost.shared_samples, modern.cost.shared_samples);
        }
    }
}
