//! Inference over a learned MRSL model.
//!
//! The strategies of the paper's inference ensemble live behind one trait,
//! [`engine::InferenceEngine`], each engine running against an
//! [`engine::InferContext`] that owns scratch, the voted-CPD cache and
//! seeding:
//!
//! * [`engine::SingleVoting`] — Algorithm 2: one missing attribute, voting
//!   over matching meta-rules (core in [`single`]).
//! * [`engine::GibbsSampler`] — §V-A: ordered Gibbs sampling for joint
//!   distributions over multiple missing attributes (chain in [`gibbs`]).
//! * [`engine::TupleDagWorkload`] — §V-B / Algorithm 3: the tuple-DAG
//!   workload optimization (DAG and schedule in [`dag`]).
//! * [`engine::IndependentBaseline`] — the independence-assuming baseline
//!   of §V, kept for ablation studies ([`independent`]).
//!
//! [`batch::infer_batch`] fans any engine out over the shared rayon
//! executor with deterministic per-tuple seeding.

pub mod batch;
pub mod dag;
pub mod engine;
pub mod gibbs;
pub mod independent;
pub mod single;
