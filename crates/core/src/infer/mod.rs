//! Inference over a learned MRSL model.
//!
//! * [`single`] — Algorithm 2: one missing attribute, voting over matching
//!   meta-rules.
//! * [`gibbs`] — §V-A: ordered Gibbs sampling for joint distributions over
//!   multiple missing attributes.
//! * [`dag`] — §V-B / Algorithm 3: the tuple-DAG workload optimization.
//! * [`independent`] — the independence-assuming baseline of §V, kept for
//!   ablation studies.

pub mod dag;
pub mod gibbs;
pub mod independent;
pub mod single;
