//! The independence-assuming baseline the paper argues against (§V).
//!
//! "One approach would be to estimate the CPDs for age and for edu
//! separately, and then to compute P(age, edu | …) = P(age | …) × P(edu |
//! …), but that would rely on independence assumptions that are not
//! warranted." The product estimator lives in
//! [`crate::infer::engine::IndependentBaseline`] so the ablation
//! experiments can quantify the gap against Gibbs sampling; this module
//! keeps the legacy free-function shim and the baseline's unit tests.

use crate::config::VotingConfig;
use crate::infer::engine::{IndependentBaseline, InferContext, InferenceEngine};
use crate::infer::gibbs::JointEstimate;
use crate::model::MrslModel;
use mrsl_relation::PartialTuple;

/// Estimates the joint over the missing attributes of `t` as the product of
/// per-attribute voted CPDs (each conditioned only on the observed
/// portion). Exact given the ensemble — no sampling involved.
#[deprecated(
    since = "0.1.0",
    note = "use the `IndependentBaseline` engine through an `InferContext` (or `infer_batch`)"
)]
pub fn infer_joint_independent(
    model: &MrslModel,
    t: &PartialTuple,
    voting: &VotingConfig,
) -> JointEstimate {
    IndependentBaseline.estimate(&mut InferContext::new(model, *voting, 0), t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LearnConfig;
    use mrsl_relation::relation::fig1_relation;
    use mrsl_relation::AttrId;

    fn model() -> MrslModel {
        let rel = fig1_relation();
        MrslModel::learn(rel.schema(), rel.complete_part(), &LearnConfig::default())
    }

    fn independent(m: &MrslModel, t: &PartialTuple) -> JointEstimate {
        IndependentBaseline.estimate(
            &mut InferContext::new(m, VotingConfig::best_averaged(), 0),
            t,
        )
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn product_structure_holds() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(1), Some(2), None, None]);
        let est = independent(&m, &t);
        let mut ctx = InferContext::new(&m, VotingConfig::best_averaged(), 0);
        let inc = ctx.vote_single(&t, AttrId(2));
        let nw = ctx.vote_single(&t, AttrId(3));
        // Cell (inc=i, nw=j) = inc[i] * nw[j].
        for i in 0..2 {
            for j in 0..2 {
                let idx = i * 2 + j;
                assert!(
                    (est.probs[idx] - inc[i] * nw[j]).abs() < 1e-9,
                    "cell ({i},{j})"
                );
            }
        }
        assert!((est.probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn marginals_of_product_match_single_inference() {
        let m = model();
        let t = PartialTuple::from_options(&[None, Some(0), None, Some(1)]);
        let est = independent(&m, &t);
        // Marginal over age (attr 0) from the joint must equal the direct
        // single-attribute estimate.
        let direct =
            InferContext::new(&m, VotingConfig::best_averaged(), 0).vote_single(&t, AttrId(0));
        let ix = &est.indexer;
        let mut marginal = [0.0f64; 3];
        for idx in 0..ix.size() {
            let combo = ix.decode(idx);
            marginal[combo[0].1.index()] += est.probs[idx];
        }
        for (a, b) in marginal.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn complete_tuple_is_trivial() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(0), Some(0), Some(0), Some(0)]);
        let est = independent(&m, &t);
        assert_eq!(est.probs, vec![1.0]);
    }

    /// Argument-wiring check only; the estimator itself is verified
    /// non-vacuously by `product_structure_holds` above.
    #[test]
    #[allow(deprecated)]
    fn shim_wires_voting_through_to_the_engine() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(1), None, None, None]);
        let legacy = infer_joint_independent(&m, &t, &VotingConfig::best_averaged());
        let modern = independent(&m, &t);
        assert_eq!(legacy.probs, modern.probs);
    }
}
