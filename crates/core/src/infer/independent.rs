//! The independence-assuming baseline the paper argues against (§V).
//!
//! "One approach would be to estimate the CPDs for age and for edu
//! separately, and then to compute P(age, edu | …) = P(age | …) × P(edu |
//! …), but that would rely on independence assumptions that are not
//! warranted." This module implements exactly that product estimator so
//! the ablation experiments can quantify the gap against Gibbs sampling.

use crate::config::VotingConfig;
use crate::infer::gibbs::JointEstimate;
use crate::infer::single::infer_single;
use crate::model::MrslModel;
use mrsl_relation::{JointIndexer, PartialTuple};

/// Estimates the joint over the missing attributes of `t` as the product of
/// per-attribute voted CPDs (each conditioned only on the observed
/// portion). Exact given the ensemble — no sampling involved.
pub fn infer_joint_independent(
    model: &MrslModel,
    t: &PartialTuple,
    voting: &VotingConfig,
) -> JointEstimate {
    let indexer = JointIndexer::new(model.schema(), t.missing_mask());
    if indexer.size() == 1 {
        return JointEstimate {
            indexer,
            probs: vec![1.0],
            sample_count: 0,
        };
    }
    let cpds: Vec<Vec<f64>> = indexer
        .attrs()
        .iter()
        .map(|&a| infer_single(model, t, a, voting))
        .collect();
    let mut probs = vec![1.0f64; indexer.size()];
    for (idx, p) in probs.iter_mut().enumerate() {
        for (k, &(_, v)) in indexer.decode(idx).iter().enumerate() {
            *p *= cpds[k][v.index()];
        }
    }
    // Product of normalized factors is normalized; renormalize to absorb
    // floating drift.
    let total: f64 = probs.iter().sum();
    probs.iter_mut().for_each(|p| *p /= total);
    JointEstimate {
        indexer,
        probs,
        sample_count: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LearnConfig;
    use mrsl_relation::relation::fig1_relation;
    use mrsl_relation::AttrId;

    fn model() -> MrslModel {
        let rel = fig1_relation();
        MrslModel::learn(rel.schema(), rel.complete_part(), &LearnConfig::default())
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn product_structure_holds() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(1), Some(2), None, None]);
        let est = infer_joint_independent(&m, &t, &VotingConfig::best_averaged());
        let inc = infer_single(&m, &t, AttrId(2), &VotingConfig::best_averaged());
        let nw = infer_single(&m, &t, AttrId(3), &VotingConfig::best_averaged());
        // Cell (inc=i, nw=j) = inc[i] * nw[j].
        for i in 0..2 {
            for j in 0..2 {
                let idx = i * 2 + j;
                assert!(
                    (est.probs[idx] - inc[i] * nw[j]).abs() < 1e-9,
                    "cell ({i},{j})"
                );
            }
        }
        assert!((est.probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn marginals_of_product_match_single_inference() {
        let m = model();
        let t = PartialTuple::from_options(&[None, Some(0), None, Some(1)]);
        let est = infer_joint_independent(&m, &t, &VotingConfig::best_averaged());
        // Marginal over age (attr 0) from the joint must equal the direct
        // single-attribute estimate.
        let direct = infer_single(&m, &t, AttrId(0), &VotingConfig::best_averaged());
        let ix = &est.indexer;
        let mut marginal = [0.0f64; 3];
        for idx in 0..ix.size() {
            let combo = ix.decode(idx);
            marginal[combo[0].1.index()] += est.probs[idx];
        }
        for (a, b) in marginal.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn complete_tuple_is_trivial() {
        let m = model();
        let t = PartialTuple::from_options(&[Some(0), Some(0), Some(0), Some(0)]);
        let est = infer_joint_independent(&m, &t, &VotingConfig::default());
        assert_eq!(est.probs, vec![1.0]);
    }
}
