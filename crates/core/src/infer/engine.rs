//! The unified inference engine abstraction.
//!
//! The paper's "inference ensemble" is one learned [`MrslModel`] queried
//! through several strategies. This module puts them behind one trait,
//! [`InferenceEngine`], with one implementation per strategy:
//!
//! * [`SingleVoting`] — Algorithm 2: voting inference for a tuple with (at
//!   most) one missing attribute; exact given the ensemble.
//! * [`GibbsSampler`] — §V-A: ordered Gibbs sampling of the joint over
//!   multiple missing attributes, one dedicated chain per tuple.
//! * [`IndependentBaseline`] — the §V product-of-marginals baseline the
//!   paper argues against, kept for ablations.
//! * [`TupleDagWorkload`] — §V-B / Algorithm 3: subsumption-driven sample
//!   sharing across a workload of tuples.
//!
//! All engines run against an [`InferContext`], which owns everything an
//! estimate needs besides the tuple itself: the model reference, the
//! [`VotingConfig`], reusable match scratch, the voted-CPD cache, and the
//! seed used for sampling engines. Contexts make scratch/cache reuse the
//! engine layer's problem instead of each caller's, and they are the unit
//! of thread ownership in [`crate::infer::batch::infer_batch`]: one
//! context per worker, never shared.

use crate::config::{GibbsConfig, VotingConfig};
use crate::infer::batch;
use crate::infer::dag::{run_workload_dag, SamplingCost, WorkloadResult};
use crate::infer::gibbs::{GibbsChain, JointEstimate};
use crate::infer::single::vote;
use crate::model::MrslModel;
use mrsl_relation::{AttrId, AttrMask, JointIndexer, PartialTuple, ValueId};
use mrsl_util::{derive_seed, FxHashMap};
use std::rc::Rc;

/// Everything inference needs besides the tuple: model, voting policy,
/// scratch buffers, the voted-CPD cache and the sampling seed.
///
/// A context is cheap to create (allocation happens lazily as buffers
/// grow) and is **not** thread-safe by design: parallel callers create one
/// context per worker. Reusing one context across many tuples amortizes
/// both the match scratch and the CPD cache — the cache is keyed only by
/// (attribute, evidence state), so it stays valid across tuples of the
/// same model and voting configuration.
pub struct InferContext<'m> {
    model: &'m MrslModel,
    voting: VotingConfig,
    /// Seed configured at construction; the reference point for
    /// [`InferContext::reseed_for_index`].
    base_seed: u64,
    /// Seed the next estimate will use.
    seed: u64,
    cache: CpdCache,
    scratch: mrsl_core_scratch::Scratch,
}

/// Private scratch bundle (kept in a nested module so field additions stay
/// out of the public surface).
mod mrsl_core_scratch {
    use crate::lattice::MatchScratch;

    #[derive(Default)]
    pub struct Scratch {
        pub matching: MatchScratch,
        pub cpd: Vec<f64>,
        pub values: Vec<u16>,
    }
}

impl<'m> InferContext<'m> {
    /// Creates a context over `model` with the given voting policy and
    /// master seed.
    pub fn new(model: &'m MrslModel, voting: VotingConfig, seed: u64) -> Self {
        Self {
            model,
            voting,
            base_seed: seed,
            seed,
            cache: CpdCache::new(model),
            scratch: Default::default(),
        }
    }

    /// The model under inference.
    pub fn model(&self) -> &'m MrslModel {
        self.model
    }

    /// The voting configuration engines must use.
    pub fn voting(&self) -> VotingConfig {
        self.voting
    }

    /// The seed the next estimate will use.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the seed for the next estimate directly (the legacy shims use
    /// this to reproduce historic streams exactly).
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Derives the per-tuple seed for workload position `index` from the
    /// context's base seed. Deterministic and schedule-independent: batch
    /// executors call this so results do not depend on thread count.
    pub fn reseed_for_index(&mut self, index: usize) {
        self.seed = derive_seed(self.base_seed, &[index as u64]);
    }

    /// Cache hit/miss counters (diagnostics).
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits, self.cache.misses)
    }

    /// The voted CPD of `attr` given the evidence `state` restricted to
    /// `evidence_mask`, memoized per (attribute, evidence state).
    pub(crate) fn voted_cpd(
        &mut self,
        attr: AttrId,
        state: &[u16],
        evidence_mask: AttrMask,
    ) -> Rc<[f64]> {
        self.cache.lookup(
            attr,
            state,
            evidence_mask,
            self.model,
            &self.voting,
            &mut self.scratch.matching,
            &mut self.scratch.cpd,
        )
    }

    /// Algorithm 2 through the context's scratch: the voted CPD over the
    /// values of `attr`, with the assigned portion of `t` as evidence.
    ///
    /// # Panics
    /// Panics if `attr` is assigned in `t`.
    pub fn vote_single(&mut self, t: &PartialTuple, attr: AttrId) -> Vec<f64> {
        assert!(
            t.get(attr).is_none(),
            "attribute {attr:?} is not missing in the tuple"
        );
        let values = &mut self.scratch.values;
        values.clear();
        values.resize(t.arity(), 0);
        for asg in t.assignments() {
            values[asg.attr.index()] = asg.value.0;
        }
        vote(
            self.model.mrsl(attr),
            values,
            t.mask(),
            &self.voting,
            &mut self.scratch.matching,
            &mut self.scratch.cpd,
        );
        self.scratch.cpd.clone()
    }
}

/// One strategy for estimating `Δt`, the joint distribution over a tuple's
/// missing attributes.
///
/// Engines are cheap, immutable descriptions of a strategy (what to run);
/// every mutable resource lives in the [`InferContext`] (how to run it).
/// That split is what lets the batch layer fan one engine out over many
/// worker-local contexts.
pub trait InferenceEngine: Sync {
    /// Short stable name, used in reports and diagnostics.
    fn name(&self) -> &'static str;

    /// Estimates `Δt` for one tuple. Sampling engines draw their
    /// randomness from `ctx.seed()`; deterministic engines ignore it.
    fn estimate(&self, ctx: &mut InferContext<'_>, t: &PartialTuple) -> JointEstimate;

    /// Sampling-cost bookkeeping for one completed estimate, aggregated by
    /// the batch layer. Exact engines cost nothing.
    fn tuple_cost(&self, est: &JointEstimate) -> SamplingCost {
        let _ = est;
        SamplingCost::default()
    }

    /// Estimates `Δt` for every tuple of a workload.
    ///
    /// The default implementation deduplicates the workload and fans the
    /// distinct tuples out over the shared rayon executor with
    /// deterministic per-tuple seeds (`derive_seed(seed, [distinct
    /// index])`), so results are bit-identical regardless of thread count.
    /// Engines that share work *between* tuples (the tuple DAG) override
    /// this.
    fn estimate_batch(
        &self,
        model: &MrslModel,
        voting: VotingConfig,
        tuples: &[PartialTuple],
        seed: u64,
    ) -> WorkloadResult {
        batch::data_parallel_batch(self, model, voting, tuples, seed)
    }
}

/// Algorithm 2: voting inference for a tuple with at most one missing
/// attribute. Exact given the ensemble — no sampling, no seed use.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleVoting;

impl InferenceEngine for SingleVoting {
    fn name(&self) -> &'static str {
        "single-voting"
    }

    /// # Panics
    /// Panics when `t` has two or more missing attributes — single-
    /// attribute voting cannot represent their correlations; use
    /// [`GibbsSampler`] or [`TupleDagWorkload`] instead.
    fn estimate(&self, ctx: &mut InferContext<'_>, t: &PartialTuple) -> JointEstimate {
        let indexer = JointIndexer::new(ctx.model().schema(), t.missing_mask());
        if indexer.size() == 1 {
            return trivial_estimate(indexer);
        }
        assert_eq!(
            t.missing_mask().count(),
            1,
            "SingleVoting handles at most one missing attribute"
        );
        let attr = t
            .missing_mask()
            .iter()
            .next()
            .expect("one missing attribute");
        let probs = ctx.vote_single(t, attr);
        JointEstimate {
            indexer,
            probs,
            sample_count: 0,
        }
    }
}

/// §V-A: one dedicated ordered-Gibbs chain per tuple (burn-in `B`, then
/// `N` recorded sweeps).
#[derive(Debug, Clone, Copy)]
pub struct GibbsSampler {
    /// Sweeps discarded before recording (`B`).
    pub burn_in: usize,
    /// Recorded sweeps per tuple (`N`).
    pub samples: usize,
}

impl GibbsSampler {
    /// Engine matching a [`GibbsConfig`]'s chain parameters (the config's
    /// voting is carried by the [`InferContext`]).
    pub fn from_config(config: &GibbsConfig) -> Self {
        Self {
            burn_in: config.burn_in,
            samples: config.samples,
        }
    }
}

impl InferenceEngine for GibbsSampler {
    fn name(&self) -> &'static str {
        "gibbs"
    }

    fn estimate(&self, ctx: &mut InferContext<'_>, t: &PartialTuple) -> JointEstimate {
        let indexer = JointIndexer::new(ctx.model().schema(), t.missing_mask());
        if indexer.size() == 1 {
            return trivial_estimate(indexer);
        }
        let mut chain = GibbsChain::new(ctx.model(), t, ctx.seed());
        for _ in 0..self.burn_in {
            chain.sweep(ctx);
        }
        let mut counts = vec![0u32; indexer.size()];
        let mut combo = vec![ValueId(0); chain.missing().len()];
        for _ in 0..self.samples {
            chain.sweep(ctx);
            let state = chain.state();
            for (slot, &a) in combo.iter_mut().zip(chain.missing()) {
                *slot = ValueId(state[a.index()]);
            }
            counts[indexer.index_of(&combo)] += 1;
        }
        let probs = if self.samples == 0 {
            // Degenerate configuration: no recorded sweeps. Fall back to
            // uniform (matching the workload sampler) instead of an
            // all-zero non-distribution.
            vec![1.0 / indexer.size() as f64; indexer.size()]
        } else {
            let n = self.samples as f64;
            counts.into_iter().map(|c| c as f64 / n).collect()
        };
        JointEstimate {
            indexer,
            probs,
            sample_count: self.samples,
        }
    }

    fn tuple_cost(&self, est: &JointEstimate) -> SamplingCost {
        // Trivial estimates (nothing missing) never started a chain.
        // `sample_count == 0` is NOT the right discriminator here: a
        // `samples: 0` configuration still burns a chain in.
        if est.indexer.size() <= 1 {
            return SamplingCost::default();
        }
        SamplingCost {
            total_draws: self.burn_in + self.samples,
            burn_in_draws: self.burn_in,
            shared_samples: 0,
            chains: 1,
            elapsed: Default::default(),
        }
    }
}

/// The §V independence baseline: the joint as the product of per-attribute
/// voted CPDs. Exact given the ensemble, wrong whenever missing attributes
/// correlate — which is precisely what the ablation experiments measure.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndependentBaseline;

impl InferenceEngine for IndependentBaseline {
    fn name(&self) -> &'static str {
        "independent"
    }

    fn estimate(&self, ctx: &mut InferContext<'_>, t: &PartialTuple) -> JointEstimate {
        let indexer = JointIndexer::new(ctx.model().schema(), t.missing_mask());
        if indexer.size() == 1 {
            return trivial_estimate(indexer);
        }
        let cpds: Vec<Vec<f64>> = indexer
            .attrs()
            .iter()
            .map(|&a| ctx.vote_single(t, a))
            .collect();
        let mut probs = vec![1.0f64; indexer.size()];
        for (idx, p) in probs.iter_mut().enumerate() {
            for (k, &(_, v)) in indexer.decode(idx).iter().enumerate() {
                *p *= cpds[k][v.index()];
            }
        }
        // Product of normalized factors is normalized; renormalize to
        // absorb floating drift.
        let total: f64 = probs.iter().sum();
        probs.iter_mut().for_each(|p| *p /= total);
        JointEstimate {
            indexer,
            probs,
            sample_count: 0,
        }
    }
}

/// §V-B / Algorithm 3: workload sampling over the tuple DAG, sharing
/// samples from subsumers to subsumees.
#[derive(Debug, Clone, Copy)]
pub struct TupleDagWorkload {
    /// Sweeps discarded before recording (`B`).
    pub burn_in: usize,
    /// Recorded samples per distinct tuple (`N`).
    pub samples: usize,
}

impl TupleDagWorkload {
    /// Engine matching a [`GibbsConfig`]'s chain parameters.
    pub fn from_config(config: &GibbsConfig) -> Self {
        Self {
            burn_in: config.burn_in,
            samples: config.samples,
        }
    }
}

impl InferenceEngine for TupleDagWorkload {
    fn name(&self) -> &'static str {
        "tuple-dag"
    }

    /// A single tuple is a singleton workload: one chain, no sharing.
    fn estimate(&self, ctx: &mut InferContext<'_>, t: &PartialTuple) -> JointEstimate {
        let mut result = run_workload_dag(
            ctx.model(),
            ctx.voting(),
            self.burn_in,
            self.samples,
            std::slice::from_ref(t),
            ctx.seed(),
        );
        result
            .estimates
            .pop()
            .expect("singleton workload yields one estimate")
    }

    /// Algorithm 3 proper. Independent DAG components run in parallel on
    /// the shared executor; within a component the paper's round-robin
    /// root schedule runs sequentially (sharing is inherently ordered).
    /// Chain seeds derive from global node indices, so results are
    /// bit-identical regardless of thread count.
    fn estimate_batch(
        &self,
        model: &MrslModel,
        voting: VotingConfig,
        tuples: &[PartialTuple],
        seed: u64,
    ) -> WorkloadResult {
        run_workload_dag(model, voting, self.burn_in, self.samples, tuples, seed)
    }
}

/// The single-combination estimate of a tuple with nothing missing.
pub(crate) fn trivial_estimate(indexer: JointIndexer) -> JointEstimate {
    JointEstimate {
        indexer,
        probs: vec![1.0],
        sample_count: 0,
    }
}

/// Memoizes voted CPDs per (attribute, evidence state).
///
/// The key packs the full state in mixed radix (with the target attribute's
/// slot zeroed) plus the attribute index. Packing requires the product of
/// domain sizes × attribute count to fit in `u64`; wider schemas disable
/// the cache (correctness is unaffected).
struct CpdCache {
    entries: FxHashMap<u64, Rc<[f64]>>,
    strides: Option<Vec<u64>>,
    /// Product of all domain cardinalities; the attribute's key stride.
    domain_product: u64,
    hits: u64,
    misses: u64,
}

impl CpdCache {
    fn new(model: &MrslModel) -> Self {
        let schema = model.schema();
        let mut strides = Vec::with_capacity(schema.attr_count());
        let mut acc: u128 = 1;
        for a in schema.attr_ids() {
            strides.push(acc as u64);
            acc = acc.saturating_mul(schema.cardinality(a) as u128);
        }
        let packable = acc.saturating_mul(schema.attr_count().max(1) as u128) < u64::MAX as u128;
        Self {
            entries: FxHashMap::default(),
            strides: packable.then_some(strides),
            domain_product: if packable { acc as u64 } else { 0 },
            hits: 0,
            misses: 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn lookup(
        &mut self,
        attr: AttrId,
        state: &[u16],
        evidence_mask: AttrMask,
        model: &MrslModel,
        voting: &VotingConfig,
        scratch: &mut crate::lattice::MatchScratch,
        buf: &mut Vec<f64>,
    ) -> Rc<[f64]> {
        let Some(strides) = &self.strides else {
            // Unpackable schema: compute directly.
            vote(model.mrsl(attr), state, evidence_mask, voting, scratch, buf);
            return Rc::from(buf.as_slice());
        };
        let mut key = 0u64;
        for (i, &v) in state.iter().enumerate() {
            if i != attr.index() {
                key = key.wrapping_add(strides[i].wrapping_mul(v as u64));
            }
        }
        // Mix the attribute in with the domain product as its stride: the
        // packed state is < domain_product, so the per-attribute key
        // ranges [attr·P, attr·P + P) are disjoint and the `packable`
        // guard (P · attr_count < 2^64) rules out overflow — collisions
        // are impossible, not merely unlikely.
        key += (attr.0 as u64) * self.domain_product;
        if let Some(cpd) = self.entries.get(&key) {
            self.hits += 1;
            return cpd.clone();
        }
        self.misses += 1;
        vote(model.mrsl(attr), state, evidence_mask, voting, scratch, buf);
        let cpd: Rc<[f64]> = Rc::from(buf.as_slice());
        self.entries.insert(key, cpd.clone());
        cpd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LearnConfig;
    use mrsl_relation::relation::fig1_relation;

    fn model() -> MrslModel {
        let rel = fig1_relation();
        MrslModel::learn(
            rel.schema(),
            rel.complete_part(),
            &LearnConfig {
                support_threshold: 0.01,
                max_itemsets: 1000,
            },
        )
    }

    #[test]
    fn single_voting_matches_direct_vote() {
        let m = model();
        let mut ctx = InferContext::new(&m, VotingConfig::best_averaged(), 0);
        let t = PartialTuple::from_options(&[None, Some(0), Some(0), Some(1)]);
        let est = SingleVoting.estimate(&mut ctx, &t);
        assert_eq!(est.probs.len(), 3);
        assert!((est.probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(est.sample_count, 0);
        let direct = ctx.vote_single(&t, AttrId(0));
        assert_eq!(est.probs, direct);
    }

    #[test]
    #[should_panic(expected = "at most one missing attribute")]
    fn single_voting_rejects_multi_missing() {
        let m = model();
        let mut ctx = InferContext::new(&m, VotingConfig::best_averaged(), 0);
        let t = PartialTuple::from_options(&[None, None, Some(0), Some(1)]);
        SingleVoting.estimate(&mut ctx, &t);
    }

    #[test]
    fn engines_agree_on_complete_tuples() {
        let m = model();
        let mut ctx = InferContext::new(&m, VotingConfig::best_averaged(), 3);
        let t = PartialTuple::from_options(&[Some(0), Some(0), Some(0), Some(0)]);
        let gibbs = GibbsSampler {
            burn_in: 10,
            samples: 50,
        };
        let dag = TupleDagWorkload {
            burn_in: 10,
            samples: 50,
        };
        for est in [
            SingleVoting.estimate(&mut ctx, &t),
            gibbs.estimate(&mut ctx, &t),
            IndependentBaseline.estimate(&mut ctx, &t),
            dag.estimate(&mut ctx, &t),
        ] {
            assert_eq!(est.probs, vec![1.0]);
            assert_eq!(est.sample_count, 0);
        }
    }

    #[test]
    fn context_cache_is_reused_across_tuples() {
        let m = model();
        let mut ctx = InferContext::new(&m, VotingConfig::best_averaged(), 7);
        let gibbs = GibbsSampler {
            burn_in: 20,
            samples: 100,
        };
        let a = PartialTuple::from_options(&[Some(0), None, None, None]);
        let b = PartialTuple::from_options(&[Some(0), None, None, None]);
        gibbs.estimate(&mut ctx, &a);
        let (hits_before, _) = ctx.cache_stats();
        gibbs.estimate(&mut ctx, &b);
        let (hits_after, _) = ctx.cache_stats();
        assert!(
            hits_after > hits_before,
            "second tuple reuses the first tuple's CPD cache"
        );
    }

    #[test]
    fn gibbs_engine_is_deterministic_per_seed() {
        let m = model();
        let gibbs = GibbsSampler {
            burn_in: 20,
            samples: 200,
        };
        let t = PartialTuple::from_options(&[Some(0), None, None, None]);
        let mut ctx = InferContext::new(&m, VotingConfig::best_averaged(), 7);
        let a = gibbs.estimate(&mut ctx, &t);
        let b = gibbs.estimate(&mut ctx, &t);
        ctx.set_seed(8);
        let c = gibbs.estimate(&mut ctx, &t);
        assert_eq!(a.probs, b.probs);
        assert_ne!(a.probs, c.probs);
    }

    #[test]
    fn engine_names_are_stable() {
        assert_eq!(SingleVoting.name(), "single-voting");
        assert_eq!(
            GibbsSampler {
                burn_in: 1,
                samples: 1
            }
            .name(),
            "gibbs"
        );
        assert_eq!(IndependentBaseline.name(), "independent");
        assert_eq!(
            TupleDagWorkload {
                burn_in: 1,
                samples: 1
            }
            .name(),
            "tuple-dag"
        );
    }

    #[test]
    fn reseed_for_index_is_stable_and_index_sensitive() {
        let m = model();
        let mut ctx = InferContext::new(&m, VotingConfig::best_averaged(), 42);
        ctx.reseed_for_index(3);
        let s3 = ctx.seed();
        ctx.reseed_for_index(4);
        let s4 = ctx.seed();
        ctx.reseed_for_index(3);
        assert_eq!(ctx.seed(), s3);
        assert_ne!(s3, s4);
        assert_eq!(s3, derive_seed(42, &[3]));
    }
}
