//! The per-attribute meta-rule semi-lattice (Defs. 2.7–2.8).
//!
//! Meta-rules for one head attribute are ordered by body subsumption:
//! `m2 ≺ m1` (m1 subsumes m2) when `body(m1) ⊂ body(m2)`. The empty-body
//! meta-rule `P(a)` is the top of the lattice. Frequent-itemset downward
//! closure makes the body family downward-closed, so the Hasse diagram's
//! cover edges are exactly "extend the body by one item"; each edge stores
//! its delta item, which lets matching check a single assignment per edge.
//!
//! **Matching** (`GetMatchingMetaRules` of Algorithm 2): a meta-rule
//! matches an evidence tuple when its body assignments all appear in the
//! evidence. Matches are found by descending from the root and expanding
//! only matching nodes; *best* (most specific) matches are the matching
//! nodes with no matching child.

use crate::config::VoterChoice;
use crate::meta_rule::MetaRule;
use mrsl_itemset::{Item, Itemset};
use mrsl_relation::{AttrId, AttrMask, PartialTuple};
use mrsl_util::FxHashMap;
use serde::{Deserialize, Serialize};

/// Handle of a meta-rule within its [`Mrsl`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MetaRuleId(pub u32);

impl MetaRuleId {
    /// The index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A cover edge to a child meta-rule, annotated with the item the child's
/// body adds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Edge {
    child: MetaRuleId,
    delta: Item,
}

/// The meta-rule semi-lattice for one attribute (`MRSL_a`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mrsl {
    head_attr: AttrId,
    cardinality: usize,
    rules: Vec<MetaRule>,
    edges: Vec<Vec<Edge>>,
    parents: Vec<Vec<MetaRuleId>>,
    levels: Vec<Vec<MetaRuleId>>,
    root: MetaRuleId,
    #[serde(skip)]
    by_body: FxHashMap<Itemset, MetaRuleId>,
}

/// Reusable scratch buffers for lattice matching; create one per thread /
/// sampler and pass to [`Mrsl::collect_matches`] to avoid per-call
/// allocation in the Gibbs hot loop.
#[derive(Debug, Default, Clone)]
pub struct MatchScratch {
    visited: Vec<u64>,
    has_matching_child: Vec<u64>,
    stack: Vec<u32>,
    /// Matching meta-rule ids, filled by `collect_matches`.
    pub matches: Vec<u32>,
}

impl MatchScratch {
    fn reset(&mut self, n: usize) {
        let words = n.div_ceil(64);
        self.visited.clear();
        self.visited.resize(words, 0);
        self.has_matching_child.clear();
        self.has_matching_child.resize(words, 0);
        self.stack.clear();
        self.matches.clear();
    }

    #[inline]
    fn mark(bits: &mut [u64], i: u32) -> bool {
        let word = &mut bits[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    #[inline]
    fn is_set(bits: &[u64], i: u32) -> bool {
        bits[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }
}

impl Mrsl {
    /// Builds the lattice from meta-rules for `head_attr`.
    ///
    /// A meta-rule with an empty body must be present — it is the lattice
    /// root and guarantees every inference task has at least one voter (the
    /// model-learning pipeline always provides it).
    ///
    /// # Panics
    /// Panics when no empty-body meta-rule exists, when two meta-rules
    /// share a body, or when a rule's head attribute disagrees.
    pub fn new(head_attr: AttrId, cardinality: usize, mut rules: Vec<MetaRule>) -> Self {
        rules.sort_by(|a, b| (a.level(), a.body()).cmp(&(b.level(), b.body())));
        let mut by_body: FxHashMap<Itemset, MetaRuleId> = FxHashMap::default();
        let mut levels: Vec<Vec<MetaRuleId>> = Vec::new();
        for (i, rule) in rules.iter().enumerate() {
            assert_eq!(rule.head_attr(), head_attr, "head attribute mismatch");
            assert_eq!(rule.cpd().len(), cardinality, "CPD arity mismatch");
            assert!(
                rule.body().value_of(head_attr).is_none(),
                "body must not assign the head attribute"
            );
            let id = MetaRuleId(i as u32);
            let prev = by_body.insert(rule.body().clone(), id);
            assert!(prev.is_none(), "duplicate meta-rule body");
            while levels.len() <= rule.level() {
                levels.push(Vec::new());
            }
            levels[rule.level()].push(id);
        }
        let root = *by_body
            .get(&Itemset::empty())
            .expect("MRSL requires the empty-body root meta-rule P(a)");

        // Cover edges: parent body = child body minus one item. Downward
        // closure of mined bodies guarantees the parent exists; a missing
        // parent (hand-built lattices) simply omits that edge.
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); rules.len()];
        let mut parents: Vec<Vec<MetaRuleId>> = vec![Vec::new(); rules.len()];
        for (i, rule) in rules.iter().enumerate() {
            if rule.level() == 0 {
                continue;
            }
            let child = MetaRuleId(i as u32);
            for &item in rule.body().items() {
                let parent_body = rule.body().without_attr(item.attr());
                if let Some(&parent) = by_body.get(&parent_body) {
                    edges[parent.index()].push(Edge { child, delta: item });
                    parents[child.index()].push(parent);
                }
            }
        }
        Self {
            head_attr,
            cardinality,
            rules,
            edges,
            parents,
            levels,
            root,
            by_body,
        }
    }

    /// The head attribute.
    pub fn head_attr(&self) -> AttrId {
        self.head_attr
    }

    /// Domain cardinality of the head attribute.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// Number of meta-rules (the model-size unit of Fig. 4(c)).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// A lattice always holds at least the root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The meta-rule for `id`.
    pub fn rule(&self, id: MetaRuleId) -> &MetaRule {
        &self.rules[id.index()]
    }

    /// All meta-rules (sorted by level, then body).
    pub fn rules(&self) -> &[MetaRule] {
        &self.rules
    }

    /// The root meta-rule `P(a)`.
    pub fn root(&self) -> MetaRuleId {
        self.root
    }

    /// Ids at body-size `level`.
    pub fn level(&self, level: usize) -> &[MetaRuleId] {
        self.levels.get(level).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Deepest populated level.
    pub fn max_level(&self) -> usize {
        self.levels.len().saturating_sub(1)
    }

    /// Looks up a meta-rule by body.
    pub fn find(&self, body: &Itemset) -> Option<MetaRuleId> {
        self.by_body.get(body).copied()
    }

    /// Direct children (more specific covers) of `id`.
    pub fn children(&self, id: MetaRuleId) -> impl Iterator<Item = MetaRuleId> + '_ {
        self.edges[id.index()].iter().map(|e| e.child)
    }

    /// Direct parents (more general covers) of `id`.
    pub fn parents(&self, id: MetaRuleId) -> &[MetaRuleId] {
        &self.parents[id.index()]
    }

    /// Rebuilds the body index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.by_body = self
            .rules
            .iter()
            .enumerate()
            .map(|(i, r)| (r.body().clone(), MetaRuleId(i as u32)))
            .collect();
    }

    /// Core matching routine over a raw evidence assignment: `values[i]` is
    /// the value of attribute `i`, valid where `evidence_mask` is set.
    /// Fills `scratch.matches` with all matching ids under `choice`.
    ///
    /// The root always matches, so the result is never empty.
    pub fn collect_matches(
        &self,
        values: &[u16],
        evidence_mask: AttrMask,
        choice: VoterChoice,
        scratch: &mut MatchScratch,
    ) {
        scratch.reset(self.rules.len());
        scratch.stack.push(self.root.0);
        MatchScratch::mark(&mut scratch.visited, self.root.0);
        let mut all_matches: Vec<u32> = Vec::new();
        while let Some(id) = scratch.stack.pop() {
            all_matches.push(id);
            for edge in &self.edges[id as usize] {
                let a = edge.delta.attr();
                if evidence_mask.contains(a) && values[a.index()] == edge.delta.value().0 {
                    // The child matches: remember the parent is not "best".
                    MatchScratch::mark(&mut scratch.has_matching_child, id);
                    if MatchScratch::mark(&mut scratch.visited, edge.child.0) {
                        scratch.stack.push(edge.child.0);
                    }
                }
            }
        }
        match choice {
            VoterChoice::All => scratch.matches = all_matches,
            VoterChoice::Best => {
                scratch.matches = all_matches
                    .into_iter()
                    .filter(|&id| !MatchScratch::is_set(&scratch.has_matching_child, id))
                    .collect();
            }
        }
    }

    /// Convenience matching over a [`PartialTuple`]; allocates, so not for
    /// hot loops. The head attribute is ignored even if assigned in `t`
    /// (bodies never mention it).
    pub fn matching(&self, t: &PartialTuple, choice: VoterChoice) -> Vec<MetaRuleId> {
        let mut values = vec![0u16; t.arity()];
        for asg in t.assignments() {
            values[asg.attr.index()] = asg.value.0;
        }
        let mut scratch = MatchScratch::default();
        self.collect_matches(&values, t.mask(), choice, &mut scratch);
        scratch.matches.into_iter().map(MetaRuleId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsl_relation::ValueId;

    /// Builds the Fig. 2 MRSL for `age` by hand: bodies over edu/inc/nw.
    fn fig2_lattice() -> Mrsl {
        let age = AttrId(0);
        let item = |a: u16, v: u16| Item::new(AttrId(a), ValueId(v));
        let mk =
            |body: Vec<Item>, w: f64, cpd: &[f64]| MetaRule::new(age, Itemset::new(body), w, cpd);
        let rules = vec![
            mk(vec![], 1.0, &[0.31, 0.38, 0.32]),            // P(age)
            mk(vec![item(1, 0)], 0.41, &[0.15, 0.70, 0.15]), // edu=HS
            mk(vec![item(2, 0)], 0.57, &[0.31, 0.41, 0.28]), // inc=50K
            mk(vec![item(2, 1)], 0.43, &[0.21, 0.21, 0.58]), // inc=100K
            mk(vec![item(3, 1)], 0.61, &[0.31, 0.38, 0.32]), // nw=500K
            mk(vec![item(1, 0), item(2, 0)], 0.30, &[0.15, 0.70, 0.15]), // edu=HS ∧ inc=50K
        ];
        Mrsl::new(age, 3, rules)
    }

    #[test]
    fn builds_fig2_shape() {
        let l = fig2_lattice();
        assert_eq!(l.len(), 6);
        assert_eq!(l.level(0).len(), 1);
        assert_eq!(l.level(1).len(), 4);
        assert_eq!(l.level(2).len(), 1);
        assert_eq!(l.max_level(), 2);
        // Root has 4 children; the level-2 node has 2 parents.
        assert_eq!(l.children(l.root()).count(), 4);
        let deep = l.level(2)[0];
        assert_eq!(l.parents(deep).len(), 2);
    }

    #[test]
    fn matching_all_reproduces_paper_example() {
        // t1 = ⟨age=?, edu=HS, inc=50K, nw=500K⟩ matches five meta-rules:
        // P(age), P(age|edu=HS), P(age|inc=50K), P(age|nw=500K),
        // P(age|edu=HS ∧ inc=50K).
        let l = fig2_lattice();
        let t = PartialTuple::from_options(&[None, Some(0), Some(0), Some(1)]);
        let matches = l.matching(&t, VoterChoice::All);
        assert_eq!(matches.len(), 5);
        // inc=100K does not match.
        let inc100 = l
            .find(&Itemset::new(vec![Item::new(AttrId(2), ValueId(1))]))
            .unwrap();
        assert!(!matches.contains(&inc100));
    }

    #[test]
    fn matching_best_selects_most_specific() {
        // Best voters for t1: the maximal matches — P(age|nw=500K) and
        // P(age|edu=HS ∧ inc=50K). P(age|edu=HS) and P(age|inc=50K) are
        // subsumed by the level-2 match; P(age) by everything.
        let l = fig2_lattice();
        let t = PartialTuple::from_options(&[None, Some(0), Some(0), Some(1)]);
        let best = l.matching(&t, VoterChoice::Best);
        assert_eq!(best.len(), 2);
        let bodies: Vec<usize> = best.iter().map(|&id| l.rule(id).level()).collect();
        assert!(bodies.contains(&1)); // nw=500K
        assert!(bodies.contains(&2)); // edu=HS ∧ inc=50K
        for &id in &best {
            let body = l.rule(id).body();
            assert!(
                body.value_of(AttrId(3)).is_some() || body.len() == 2,
                "unexpected best voter {body:?}"
            );
        }
    }

    #[test]
    fn root_always_matches_even_with_no_evidence() {
        let l = fig2_lattice();
        let t = PartialTuple::all_missing(4);
        let all = l.matching(&t, VoterChoice::All);
        assert_eq!(all, vec![l.root()]);
        let best = l.matching(&t, VoterChoice::Best);
        assert_eq!(best, vec![l.root()]);
    }

    #[test]
    fn best_equals_all_when_single_match() {
        let l = fig2_lattice();
        // Evidence only on edu=BS: nothing below the root matches.
        let t = PartialTuple::from_options(&[None, Some(1), None, None]);
        assert_eq!(l.matching(&t, VoterChoice::All).len(), 1);
        assert_eq!(l.matching(&t, VoterChoice::Best).len(), 1);
    }

    #[test]
    fn matches_are_downward_closed() {
        // Every ancestor of a match is also a match.
        let l = fig2_lattice();
        let t = PartialTuple::from_options(&[None, Some(0), Some(0), None]);
        let matches = l.matching(&t, VoterChoice::All);
        for &id in &matches {
            for &p in l.parents(id) {
                assert!(matches.contains(&p), "parent of a match must match");
            }
        }
        // And best ⊆ all.
        let best = l.matching(&t, VoterChoice::Best);
        for b in &best {
            assert!(matches.contains(b));
        }
    }

    #[test]
    #[should_panic(expected = "root meta-rule")]
    fn requires_root() {
        let age = AttrId(0);
        let body = Itemset::new(vec![Item::new(AttrId(1), ValueId(0))]);
        let rules = vec![MetaRule::new(age, body, 0.5, &[0.5, 0.5])];
        Mrsl::new(age, 2, rules);
    }

    #[test]
    #[should_panic(expected = "duplicate meta-rule body")]
    fn rejects_duplicate_bodies() {
        let age = AttrId(0);
        let rules = vec![
            MetaRule::new(age, Itemset::empty(), 1.0, &[0.5, 0.5]),
            MetaRule::new(age, Itemset::empty(), 1.0, &[0.4, 0.6]),
        ];
        Mrsl::new(age, 2, rules);
    }

    #[test]
    #[should_panic(expected = "body must not assign the head")]
    fn rejects_head_in_body() {
        let age = AttrId(0);
        let rules = vec![
            MetaRule::new(age, Itemset::empty(), 1.0, &[0.5, 0.5]),
            MetaRule::new(
                age,
                Itemset::new(vec![Item::new(age, ValueId(0))]),
                0.5,
                &[0.5, 0.5],
            ),
        ];
        Mrsl::new(age, 2, rules);
    }

    #[test]
    fn collect_matches_reuses_scratch() {
        let l = fig2_lattice();
        let mut scratch = MatchScratch::default();
        let values = [0u16, 0, 0, 1];
        let mask = AttrMask::from_attrs([AttrId(1), AttrId(2), AttrId(3)]);
        l.collect_matches(&values, mask, VoterChoice::All, &mut scratch);
        assert_eq!(scratch.matches.len(), 5);
        // Second call with different evidence reuses the buffers.
        l.collect_matches(&values, AttrMask::EMPTY, VoterChoice::All, &mut scratch);
        assert_eq!(scratch.matches.len(), 1);
    }

    #[test]
    fn serde_roundtrip_preserves_matching() {
        let l = fig2_lattice();
        let json = serde_json_like_roundtrip(&l);
        let t = PartialTuple::from_options(&[None, Some(0), Some(0), Some(1)]);
        assert_eq!(
            l.matching(&t, VoterChoice::Best).len(),
            json.matching(&t, VoterChoice::Best).len()
        );
    }

    fn serde_json_like_roundtrip(l: &Mrsl) -> Mrsl {
        // Simulates what serde would do: drop the skipped index, rebuild.
        let mut clone = l.clone();
        clone.by_body = FxHashMap::default();
        clone.rebuild_index();
        clone
    }
}
