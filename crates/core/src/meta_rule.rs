//! Meta-rules: grouped association rules with smoothed CPD estimates
//! (Def. 2.6, `ComputeMetaRules`).
//!
//! Association rules with the same body and head attribute but different
//! head values are combined into one meta-rule whose estimated CPD `Δ(m)`
//! collects the rules' confidences. Because some head values may fall below
//! the support threshold, the confidences need not sum to 1; §III smooths
//! each CPD by (1) spreading the residual probability mass equally over the
//! whole domain, (2) flooring every entry at `1e-5` so Gibbs transitions
//! stay positive, and (3) renormalizing.

use crate::assoc::AssociationRule;
use mrsl_itemset::Itemset;
use mrsl_relation::AttrId;
use mrsl_util::FxHashMap;
use serde::{Deserialize, Serialize};

/// The positivity floor the paper assigns to every CPD entry.
pub const SMOOTH_FLOOR: f64 = 1e-5;

/// A meta-rule: an estimated CPD for `head_attr` given `body`, weighted by
/// the body's support.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetaRule {
    head_attr: AttrId,
    body: Itemset,
    weight: f64,
    cpd: Vec<f64>,
    mined_values: usize,
}

impl MetaRule {
    /// Builds a meta-rule directly from a raw (possibly deficient)
    /// confidence vector; applies the paper's smoothing.
    ///
    /// # Panics
    /// Panics if `raw_confidences` is empty or the weight is not in (0, 1].
    pub fn new(head_attr: AttrId, body: Itemset, weight: f64, raw_confidences: &[f64]) -> Self {
        assert!(!raw_confidences.is_empty(), "empty CPD");
        assert!(
            weight > 0.0 && weight <= 1.0 + 1e-9,
            "weight {weight} outside (0, 1]"
        );
        let mined_values = raw_confidences.iter().filter(|&&c| c > 0.0).count();
        Self {
            head_attr,
            body,
            weight,
            cpd: smooth_cpd(raw_confidences),
            mined_values,
        }
    }

    /// The head attribute (`head(m)`).
    pub fn head_attr(&self) -> AttrId {
        self.head_attr
    }

    /// The body (`body(m)`, the common attribute-value assignments).
    pub fn body(&self) -> &Itemset {
        &self.body
    }

    /// The meta-rule weight: the support of the body itemset (§III,
    /// "we record the support of the frequent itemset that corresponds to
    /// the body of the meta-rule as that meta-rule's support").
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The smoothed, strictly positive CPD estimate `Δ(m)`.
    pub fn cpd(&self) -> &[f64] {
        &self.cpd
    }

    /// How many head values were backed by a mined rule (the rest got only
    /// smoothed residual mass).
    pub fn mined_values(&self) -> usize {
        self.mined_values
    }

    /// Body size — the meta-rule's level within its semi-lattice.
    pub fn level(&self) -> usize {
        self.body.len()
    }
}

/// §III smoothing: spread residual mass uniformly, floor at
/// [`SMOOTH_FLOOR`], renormalize. The result is strictly positive and sums
/// to 1.
pub fn smooth_cpd(raw: &[f64]) -> Vec<f64> {
    let k = raw.len();
    let total: f64 = raw.iter().sum();
    // Residual mass not covered by mined rules (clamped: floating error can
    // push the sum of confidences a hair above 1).
    let residual = (1.0 - total).max(0.0);
    let mut cpd: Vec<f64> = raw
        .iter()
        .map(|&c| (c + residual / k as f64).max(SMOOTH_FLOOR))
        .collect();
    let sum: f64 = cpd.iter().sum();
    cpd.iter_mut().for_each(|p| *p /= sum);
    cpd
}

/// `ComputeMetaRules` of Algorithm 1: groups rules by body and emits one
/// meta-rule per distinct body.
///
/// `cardinality` is the head attribute's domain size; rules are assumed to
/// all have head attribute `attr`.
pub fn compute_meta_rules(
    attr: AttrId,
    cardinality: usize,
    rules: &[AssociationRule],
) -> Vec<MetaRule> {
    let mut grouped: FxHashMap<&Itemset, Vec<&AssociationRule>> = FxHashMap::default();
    for r in rules {
        debug_assert_eq!(r.head.attr(), attr);
        grouped.entry(&r.body).or_default().push(r);
    }
    let mut metas: Vec<MetaRule> = grouped
        .into_iter()
        .map(|(body, group)| {
            let mut raw = vec![0.0f64; cardinality];
            let weight = group[0].support_body;
            for r in &group {
                raw[r.head.value().index()] = r.confidence();
            }
            MetaRule::new(attr, body.clone(), weight, &raw)
        })
        .collect();
    // Deterministic order: by level then body.
    metas.sort_by(|a, b| (a.level(), a.body()).cmp(&(b.level(), b.body())));
    metas
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsl_itemset::Item;
    use mrsl_relation::ValueId;

    #[test]
    fn smoothing_preserves_complete_cpds() {
        let cpd = smooth_cpd(&[0.15, 0.70, 0.15]);
        assert!((cpd.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for (got, want) in cpd.iter().zip([0.15, 0.70, 0.15]) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn smoothing_spreads_residual_mass_equally() {
        // Only one value mined with confidence 0.4: residual 0.6 spread as
        // 0.2 each → [0.6, 0.2, 0.2].
        let cpd = smooth_cpd(&[0.4, 0.0, 0.0]);
        assert!((cpd[0] - 0.6).abs() < 1e-9);
        assert!((cpd[1] - 0.2).abs() < 1e-9);
        assert!((cpd[2] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn smoothing_output_is_strictly_positive() {
        let cpd = smooth_cpd(&[1.0, 0.0]);
        assert!(cpd.iter().all(|&p| p >= SMOOTH_FLOOR / 2.0));
        assert!(cpd[1] > 0.0);
        assert!((cpd.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smoothing_handles_overshoot() {
        // Confidences can sum slightly above 1 from floating error.
        let cpd = smooth_cpd(&[0.7, 0.3 + 1e-12]);
        assert!((cpd.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn meta_rule_groups_by_body() {
        let attr = AttrId(0);
        let body_a = Itemset::new(vec![Item::new(AttrId(1), ValueId(0))]);
        let body_b = Itemset::empty();
        let rule = |body: &Itemset, v: u16, sf: f64, sb: f64| AssociationRule {
            body: body.clone(),
            head: Item::new(attr, ValueId(v)),
            support_full: sf,
            support_body: sb,
        };
        let rules = vec![
            rule(&body_a, 0, 0.06, 0.41),
            rule(&body_a, 1, 0.29, 0.41),
            rule(&body_a, 2, 0.06, 0.41),
            rule(&body_b, 0, 0.31, 1.0),
            rule(&body_b, 1, 0.38, 1.0),
        ];
        let metas = compute_meta_rules(attr, 3, &rules);
        assert_eq!(metas.len(), 2);
        // Sorted by level: empty body first.
        assert_eq!(metas[0].level(), 0);
        assert_eq!(metas[1].level(), 1);
        // The paper's example: P(age | edu=HS) ≈ [0.15, 0.70, 0.15].
        let m = &metas[1];
        assert!((m.weight() - 0.41).abs() < 1e-12);
        assert_eq!(m.mined_values(), 3);
        let expected = [0.06 / 0.41, 0.29 / 0.41, 0.06 / 0.41];
        for (got, want) in m.cpd().iter().zip(expected) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn missing_head_values_receive_residual_mass() {
        let attr = AttrId(0);
        let rules = vec![AssociationRule {
            body: Itemset::empty(),
            head: Item::new(attr, ValueId(1)),
            support_full: 0.5,
            support_body: 1.0,
        }];
        let metas = compute_meta_rules(attr, 4, &rules);
        assert_eq!(metas.len(), 1);
        let cpd = metas[0].cpd();
        assert_eq!(metas[0].mined_values(), 1);
        // Residual 0.5 split over 4 values: unmined get 0.125, mined 0.625.
        assert!((cpd[1] - 0.625).abs() < 1e-9);
        for v in [0, 2, 3] {
            assert!((cpd[v] - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn rejects_zero_weight() {
        MetaRule::new(AttrId(0), Itemset::empty(), 0.0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty CPD")]
    fn rejects_empty_cpd() {
        MetaRule::new(AttrId(0), Itemset::empty(), 1.0, &[]);
    }
}
