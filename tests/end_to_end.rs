//! End-to-end pipeline tests: generate → learn → infer → derive → query.

use mrsl_repro::bayesnet::catalog::by_name;
use mrsl_repro::bayesnet::{conditional, BayesianNetwork};
use mrsl_repro::core::{
    derive_probabilistic_db, DeriveConfig, GibbsConfig, LearnConfig, VotingConfig,
};
use mrsl_repro::eval::kl_divergence;
use mrsl_repro::probdb::query::{expected_count, Predicate};
use mrsl_repro::relation::{AttrId, Relation, ValueId};
use mrsl_repro::util::seeded_rng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Builds an incomplete relation by sampling a catalog network and hiding
/// 1–2 attributes in the last `incomplete` tuples.
fn synthetic_relation(
    name: &str,
    complete: usize,
    incomplete: usize,
    seed: u64,
) -> (BayesianNetwork, Relation) {
    let net = by_name(name).expect("catalog network").topology;
    let bn = BayesianNetwork::instantiate(&net, 0.5, seed);
    let points = mrsl_repro::bayesnet::sampler::sample_dataset(&bn, complete + incomplete, seed);
    let mut rel = Relation::new(bn.schema().clone());
    let arity = bn.schema().attr_count();
    let mut rng = seeded_rng(seed ^ 0xfe);
    for (i, p) in points.into_iter().enumerate() {
        if i < complete {
            rel.push_complete(p).unwrap();
        } else {
            let hide = rng.gen_range(1..=2usize);
            let mut attrs: Vec<u16> = (0..arity as u16).collect();
            attrs.shuffle(&mut rng);
            let mut t = p.to_partial();
            for &a in &attrs[..hide] {
                t = t.without_attr(AttrId(a));
            }
            rel.push(t).unwrap();
        }
    }
    (bn, rel)
}

fn quick_derive_config() -> DeriveConfig {
    DeriveConfig {
        learn: LearnConfig {
            support_threshold: 0.005,
            max_itemsets: 1000,
        },
        gibbs: GibbsConfig {
            burn_in: 100,
            samples: 800,
            voting: VotingConfig::best_averaged(),
        },
        ..DeriveConfig::default()
    }
}

#[test]
fn derived_blocks_are_valid_distributions_matching_observations() {
    let (_bn, rel) = synthetic_relation("BN9", 4000, 150, 7);
    let out = derive_probabilistic_db(&rel, &quick_derive_config());
    assert_eq!(out.db.blocks().len(), 150);
    for (block, t) in out.db.blocks().iter().zip(rel.incomplete_part()) {
        let total: f64 = block.alternatives().iter().map(|a| a.prob).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for alt in block.alternatives() {
            assert!(
                t.matches_point(&alt.tuple),
                "alternative contradicts observations"
            );
            assert!(alt.prob > 0.0);
        }
    }
}

#[test]
fn derived_estimates_track_true_conditionals() {
    // The average KL between Δt and the generating network's exact
    // conditional should be small on an easy binary network.
    let (bn, rel) = synthetic_relation("BN8", 5000, 120, 3);
    let out = derive_probabilistic_db(&rel, &quick_derive_config());
    let mut kl_sum = 0.0;
    let mut n = 0usize;
    for (t, est) in rel.incomplete_part().iter().zip(&out.estimates) {
        let Some(truth) = conditional(&bn, t.missing_mask(), t) else {
            continue;
        };
        kl_sum += kl_divergence(&truth, &est.probs);
        n += 1;
    }
    let avg = kl_sum / n as f64;
    assert!(n >= 100);
    assert!(
        avg < 0.15,
        "average KL {avg} too high for BN8 at 5k training"
    );
}

#[test]
fn expected_counts_are_consistent_with_block_marginals() {
    let (_bn, rel) = synthetic_relation("BN13", 3000, 100, 11);
    let out = derive_probabilistic_db(&rel, &quick_derive_config());
    let attr = AttrId(0);
    // Sum of expected counts over all values of one attribute equals the
    // total number of tuples (every tuple has exactly one value).
    let card = rel.schema().cardinality(attr);
    let mut total = 0.0;
    for v in 0..card as u16 {
        total += expected_count(&out.db, &Predicate::any().and_eq(attr, ValueId(v)));
    }
    let db_tuples = (out.db.certain().len() + out.db.blocks().len()) as f64;
    assert!((total - db_tuples).abs() < 1e-6, "{total} vs {db_tuples}");
}

#[test]
fn derivation_strategies_agree_end_to_end() {
    use mrsl_repro::core::WorkloadStrategy;
    let (_bn, rel) = synthetic_relation("BN9", 2000, 60, 19);
    let mut config = quick_derive_config();
    config.gibbs.samples = 2500;
    config.strategy = WorkloadStrategy::TupleAtATime;
    let base = derive_probabilistic_db(&rel, &config);
    config.strategy = WorkloadStrategy::TupleDag;
    let dag = derive_probabilistic_db(&rel, &config);
    // Same model, same block keys; estimates agree within MC noise.
    assert_eq!(base.db.blocks().len(), dag.db.blocks().len());
    for (a, b) in base.estimates.iter().zip(&dag.estimates) {
        for (pa, pb) in a.probs.iter().zip(&b.probs) {
            assert!((pa - pb).abs() < 0.12, "{pa} vs {pb}");
        }
    }
}

#[test]
fn larger_training_sets_do_not_hurt_accuracy() {
    let score = |train: usize| {
        let (bn, rel) = synthetic_relation("BN13", train, 80, 23);
        let out = derive_probabilistic_db(&rel, &quick_derive_config());
        let mut kl = 0.0;
        let mut n = 0;
        for (t, est) in rel.incomplete_part().iter().zip(&out.estimates) {
            if let Some(truth) = conditional(&bn, t.missing_mask(), t) {
                kl += kl_divergence(&truth, &est.probs);
                n += 1;
            }
        }
        kl / n as f64
    };
    let small = score(400);
    let large = score(6000);
    assert!(
        large <= small + 0.05,
        "more data should not hurt: {small} -> {large}"
    );
}
