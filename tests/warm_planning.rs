//! Warm-planning suite.
//!
//! Bounds planning has two expensive cold-only stages: the BFS over
//! dissociation candidates and the bracket program compilation. Both are
//! cached under the query's shape key, so a warm hit must run neither.
//! This lives in its own test binary because it observes the
//! process-wide [`dissociation_search_count`] counter.

use mrsl_repro::probdb::{
    dissociation_search_count, Alternative, Block, Catalog, CatalogEngine, PlanRoute, Predicate,
    ProbDb, Query, QueryEngineConfig, Statistic,
};
use mrsl_repro::relation::{AttrId, CompleteTuple, Schema, ValueId};

fn alt(values: Vec<u16>, prob: f64) -> Alternative {
    Alternative {
        tuple: CompleteTuple::from_values(values),
        prob,
    }
}

/// The unsafe chain `R(x), S(x,y), T(y)` — the minimal dissociable shape.
fn chain_catalog() -> Catalog {
    let one = |n: &str| {
        Schema::builder()
            .attribute(n, ["v0", "v1"])
            .attribute("ok", ["no", "yes"])
            .build()
            .unwrap()
    };
    let two = Schema::builder()
        .attribute("x", ["v0", "v1"])
        .attribute("y", ["v0", "v1"])
        .attribute("ok", ["no", "yes"])
        .build()
        .unwrap();
    let pair = |k: u16, p: f64| vec![alt(vec![k, 0], 1.0 - p), alt(vec![k, 1], p)];
    let spair = |x: u16, y: u16, p: f64| vec![alt(vec![x, y, 0], 1.0 - p), alt(vec![x, y, 1], p)];
    let mut r = ProbDb::new(one("x"));
    r.push_block(Block::new(0, pair(0, 0.6)).unwrap()).unwrap();
    r.push_block(Block::new(1, pair(1, 0.5)).unwrap()).unwrap();
    let mut s = ProbDb::new(two);
    s.push_block(Block::new(0, spair(0, 1, 0.7)).unwrap())
        .unwrap();
    s.push_block(Block::new(1, spair(1, 0, 0.4)).unwrap())
        .unwrap();
    let mut t = ProbDb::new(one("y"));
    t.push_block(Block::new(0, pair(0, 0.8)).unwrap()).unwrap();
    t.push_block(Block::new(1, pair(1, 0.3)).unwrap()).unwrap();
    let mut catalog = Catalog::new();
    catalog.add("r", r).unwrap();
    catalog.add("s", s).unwrap();
    catalog.add("t", t).unwrap();
    catalog
}

fn chain_query() -> Query {
    let ok2 = Predicate::eq(AttrId(1), ValueId(1));
    let ok3 = Predicate::eq(AttrId(2), ValueId(1));
    Query::scan("r")
        .filter(ok2.clone())
        .join_on(Query::scan("s").filter(ok3), [(AttrId(0), AttrId(0))])
        .join_on_rel("s", Query::scan("t").filter(ok2), [(AttrId(1), AttrId(0))])
}

/// Cold bounds planning runs the dissociation BFS once; warm hits reuse
/// the cached candidates and bracket programs and must not search again —
/// not even after a benign catalog mutation re-binds the registers.
#[test]
fn warm_bounds_hits_skip_the_dissociation_search() {
    let mut catalog = chain_catalog();
    let q = chain_query();
    let config = QueryEngineConfig {
        bounds_tolerance: 1.0,
        ..QueryEngineConfig::default()
    };
    let engine = CatalogEngine::with_config(&catalog, config);
    let before = dissociation_search_count();
    let (_, cold) = engine.evaluate(&q, Statistic::ProbabilityBounds).unwrap();
    assert_eq!(cold.route, PlanRoute::Compiled);
    let after_cold = dissociation_search_count();
    assert!(after_cold > before, "cold planning must run the BFS");
    let (_, warm) = engine.evaluate(&q, Statistic::ProbabilityBounds).unwrap();
    assert_eq!(warm.route, PlanRoute::CacheHit);
    assert_eq!(
        dissociation_search_count(),
        after_cold,
        "a warm hit re-ran the dissociation search"
    );
    // A data change moves versions and re-binds registers, but the
    // candidate set is shape-derived: still no new search.
    let cache = engine.plan_cache().clone();
    catalog
        .get_mut("s")
        .unwrap()
        .push_block(Block::new(2, vec![alt(vec![0, 0, 0], 0.5), alt(vec![0, 0, 1], 0.5)]).unwrap())
        .unwrap();
    let warm_engine = CatalogEngine::with_plan_cache(&catalog, config, cache);
    let (_, warm) = warm_engine
        .evaluate(&q, Statistic::ProbabilityBounds)
        .unwrap();
    assert_eq!(warm.route, PlanRoute::CacheHit);
    assert_eq!(
        dissociation_search_count(),
        after_cold,
        "a post-mutation warm hit re-ran the dissociation search"
    );
}
