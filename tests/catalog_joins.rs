//! Acceptance tests for the multi-relation catalog + safe-plan planner:
//! a two-relation hierarchical join (sensors ⨝ readings on the station id
//! with a selection on each side) must be classified `Liftable` and
//! answered exactly — within 3σ of the multi-relation Monte-Carlo
//! estimate — while a non-hierarchical query must be classified unsafe
//! and routed to sampling with the decomposition recorded in the report.

use mrsl_repro::probdb::testutil::{oracle, oracle_probability};
use mrsl_repro::probdb::{
    Alternative, Block, Catalog, CatalogEngine, EvalPath, PlanClass, Predicate, ProbDb, Query,
    QueryAnswer, QueryEngineConfig, SafePlan, Statistic,
};
use mrsl_repro::relation::{AttrId, CompleteTuple, Schema, ValueId};

fn alt(values: Vec<u16>, prob: f64) -> Alternative {
    Alternative {
        tuple: CompleteTuple::from_values(values),
        prob,
    }
}

/// `sensors(station, kind)`: certain outdoor sensors at s0 and s3, blocks
/// with known stations and uncertain kind.
fn sensors() -> ProbDb {
    let schema = Schema::builder()
        .attribute("station", ["s0", "s1", "s2", "s3"])
        .attribute("kind", ["indoor", "outdoor"])
        .build()
        .unwrap();
    let mut db = ProbDb::new(schema);
    db.push_certain(CompleteTuple::from_values(vec![0, 1]))
        .unwrap();
    db.push_certain(CompleteTuple::from_values(vec![3, 1]))
        .unwrap();
    db.push_block(Block::new(0, vec![alt(vec![1, 0], 0.8), alt(vec![1, 1], 0.2)]).unwrap())
        .unwrap();
    db.push_block(Block::new(1, vec![alt(vec![2, 0], 0.4), alt(vec![2, 1], 0.6)]).unwrap())
        .unwrap();
    db
}

/// `readings(station, level)`: one certain high reading, blocks with known
/// stations and uncertain level.
fn readings() -> ProbDb {
    let schema = Schema::builder()
        .attribute("station", ["s0", "s1", "s2", "s3"])
        .attribute("level", ["low", "high"])
        .build()
        .unwrap();
    let mut db = ProbDb::new(schema);
    db.push_certain(CompleteTuple::from_values(vec![2, 1]))
        .unwrap();
    db.push_block(Block::new(0, vec![alt(vec![0, 0], 0.5), alt(vec![0, 1], 0.5)]).unwrap())
        .unwrap();
    db.push_block(Block::new(1, vec![alt(vec![1, 0], 0.3), alt(vec![1, 1], 0.7)]).unwrap())
        .unwrap();
    db.push_block(Block::new(2, vec![alt(vec![3, 0], 0.9), alt(vec![3, 1], 0.1)]).unwrap())
        .unwrap();
    db
}

fn catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.add("sensors", sensors()).unwrap();
    catalog.add("readings", readings()).unwrap();
    catalog
}

/// σ[kind=outdoor](sensors) ⨝ σ[level=high](readings) on the station id.
fn hierarchical_query() -> Query {
    Query::scan("sensors")
        .filter(Predicate::eq(AttrId(1), ValueId(1)))
        .join_on(
            Query::scan("readings").filter(Predicate::eq(AttrId(1), ValueId(1))),
            [(AttrId(0), AttrId(0))],
        )
}

#[test]
fn hierarchical_join_is_liftable_and_exact_within_3_sigma_of_mc() {
    let catalog = catalog();
    let engine = CatalogEngine::new(&catalog);
    let query = hierarchical_query();

    // Classified safe: exact extensional evaluation.
    let (path, plan) = engine.plan(&query, Statistic::Probability).unwrap();
    assert_eq!(path, EvalPath::ExactColumnar);
    assert_eq!(plan, PlanClass::Liftable);
    let (p, report) = engine.probability(&query).unwrap();
    assert_eq!(report.plan, PlanClass::Liftable);
    assert_eq!(report.mc_samples, 0);
    assert!(matches!(
        report.decomposition,
        Some(SafePlan::KeyPartition { .. })
    ));

    // The exact answer is the ground truth: verify against the shared
    // brute-force joint-world oracle.
    let brute = oracle_probability(&catalog, &query).unwrap();
    assert!((p - brute).abs() < 1e-12, "exact {p} vs brute {brute}");

    // The multi-relation Monte-Carlo estimate agrees within 3σ.
    let mc_engine = CatalogEngine::with_config(
        &catalog,
        QueryEngineConfig {
            force_monte_carlo: true,
            mc_samples: 50_000,
            ..QueryEngineConfig::default()
        },
    );
    let (answer, mc_report) = mc_engine.evaluate(&query, Statistic::Probability).unwrap();
    assert_eq!(mc_report.path, EvalPath::MonteCarlo);
    assert_eq!(mc_report.plan, PlanClass::ForcedMonteCarlo);
    let QueryAnswer::Probability { p: mc, std_error } = answer else {
        panic!("probability expected");
    };
    let sigma = std_error.expect("MC reports a standard error").max(1e-9);
    assert!(
        (p - mc).abs() <= 3.0 * sigma,
        "exact {p} vs MC {mc} beyond 3σ ({sigma})"
    );
}

#[test]
fn non_hierarchical_query_is_unsafe_and_sampled_with_recorded_decomposition() {
    // sensors(station, kind) ⨝ readings(station, level) ⨝ levels(level):
    // station links {sensors, readings}, level links {readings, levels} —
    // overlapping, non-nested subgoal sets: the classic unsafe shape.
    let levels_schema = Schema::builder()
        .attribute("level", ["low", "high"])
        .build()
        .unwrap();
    let mut levels = ProbDb::new(levels_schema);
    levels
        .push_block(Block::new(0, vec![alt(vec![0], 0.5), alt(vec![1], 0.5)]).unwrap())
        .unwrap();
    let mut catalog = catalog();
    catalog.add("levels", levels).unwrap();
    let engine = CatalogEngine::with_config(
        &catalog,
        QueryEngineConfig {
            mc_samples: 30_000,
            ..QueryEngineConfig::default()
        },
    );
    let query = Query::scan("sensors")
        .join_on("readings", [(AttrId(0), AttrId(0))])
        .join_on_rel("readings", "levels", [(AttrId(1), AttrId(0))]);

    let (path, plan) = engine.plan(&query, Statistic::Probability).unwrap();
    assert_eq!(path, EvalPath::MonteCarlo);
    assert_eq!(plan, PlanClass::NonHierarchical);
    let (p, report) = engine.probability(&query).unwrap();
    assert_eq!(report.path, EvalPath::MonteCarlo);
    assert_eq!(report.plan, PlanClass::NonHierarchical);
    assert_eq!(report.mc_samples, 30_000);
    assert_eq!(report.relations.len(), 3);
    // The report records why no safe decomposition exists.
    let Some(SafePlan::Unsafe { reason }) = &report.decomposition else {
        panic!(
            "expected unsafe decomposition, got {:?}",
            report.decomposition
        );
    };
    assert!(reason.contains("non-hierarchical"), "{reason}");

    // The sampled answer still matches the brute-force oracle.
    let brute = oracle_probability(&catalog, &query).unwrap();
    assert!((p - brute).abs() < 0.02, "MC {p} vs brute {brute}");
}

#[test]
fn joined_expected_count_is_exact_for_every_shape() {
    // Expected counts ride on linearity of expectation: exact even for
    // the unsafe shape above.
    let catalog = catalog();
    let engine = CatalogEngine::new(&catalog);
    let query = hierarchical_query();
    let (count, report) = engine.expected_count(&query).unwrap();
    assert_eq!(report.path, EvalPath::ExactColumnar);
    let brute = oracle(&catalog, &query, 1_000_000).unwrap();
    assert!(
        (count - brute.expected_count).abs() < 1e-12,
        "exact {count} vs brute {}",
        brute.expected_count
    );
    // The oracle's count distribution is consistent with its own moments.
    let mean: f64 = brute
        .count_distribution
        .iter()
        .enumerate()
        .map(|(k, &p)| k as f64 * p)
        .sum();
    assert!((mean - brute.expected_count).abs() < 1e-12);
}

#[test]
fn projection_is_metadata_and_does_not_change_answers() {
    let catalog = catalog();
    let engine = CatalogEngine::new(&catalog);
    let bare = hierarchical_query();
    let projected = hierarchical_query().project([AttrId(0)]);
    let (p1, _) = engine.probability(&bare).unwrap();
    let (p2, _) = engine.probability(&projected).unwrap();
    assert_eq!(p1.to_bits(), p2.to_bits());
    let (c1, _) = engine.expected_count(&bare).unwrap();
    let (c2, _) = engine.expected_count(&projected).unwrap();
    assert_eq!(c1.to_bits(), c2.to_bits());
}
