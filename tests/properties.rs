//! Property-based tests (proptest) over cross-crate invariants.

use mrsl_repro::bayesnet::{conditional, conditional_brute_force, BayesianNetwork};
use mrsl_repro::core::{InferContext, LearnConfig, MrslModel, TupleDag, VotingConfig};
use mrsl_repro::itemset::{AprioriConfig, FrequentItemsets, Itemset};
use mrsl_repro::relation::{AttrId, AttrMask, CompleteTuple, PartialTuple, Schema, SchemaBuilder};
use proptest::prelude::*;
use std::sync::Arc;

/// A random small schema: 2–5 attributes, cardinalities 2–4.
fn arb_schema() -> impl Strategy<Value = Arc<Schema>> {
    prop::collection::vec(2usize..=4, 2..=5).prop_map(|cards| {
        let mut b = SchemaBuilder::default();
        for (i, card) in cards.iter().enumerate() {
            b = b.attribute(format!("a{i}"), (0..*card).map(|v| format!("v{v}")));
        }
        b.build().expect("valid schema")
    })
}

/// Random points for a schema.
fn arb_points(schema: Arc<Schema>, n: std::ops::Range<usize>) -> BoxedStrategy<Vec<CompleteTuple>> {
    let cards: Vec<u16> = schema
        .attr_ids()
        .map(|a| schema.cardinality(a) as u16)
        .collect();
    prop::collection::vec(
        cards
            .iter()
            .map(|&c| (0..c).boxed())
            .collect::<Vec<_>>()
            .prop_map(CompleteTuple::from_values),
        n,
    )
    .boxed()
}

/// Random partial tuple over a schema (possibly complete or empty).
fn arb_partial(schema: Arc<Schema>) -> BoxedStrategy<PartialTuple> {
    let slots: Vec<BoxedStrategy<Option<u16>>> = schema
        .attr_ids()
        .map(|a| {
            let card = schema.cardinality(a) as u16;
            prop::option::of(0..card).boxed()
        })
        .collect();
    slots
        .prop_map(|opts| PartialTuple::from_options(&opts))
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mined supports always equal brute-force counting over the points.
    #[test]
    fn mined_supports_match_brute_force(
        (schema, points) in arb_schema().prop_flat_map(|s| {
            let pts = arb_points(s.clone(), 8..40);
            (Just(s), pts)
        }),
        theta in 0.0f64..0.4,
    ) {
        let freq = FrequentItemsets::mine(
            &schema,
            &points,
            &AprioriConfig { support_threshold: theta, max_itemsets: 1000 },
        );
        for fs in freq.iter() {
            let brute = points
                .iter()
                .filter(|p| fs.itemset.matches_tuple(&p.to_partial()))
                .count();
            prop_assert_eq!(fs.count, brute);
            if !fs.itemset.is_empty() {
                prop_assert!(fs.support >= theta - 1e-9);
            }
        }
    }

    /// Downward closure: every sub-itemset of a frequent itemset is frequent
    /// with at least the same support.
    #[test]
    fn downward_closure(
        (schema, points) in arb_schema().prop_flat_map(|s| {
            let pts = arb_points(s.clone(), 10..30);
            (Just(s), pts)
        }),
    ) {
        let freq = FrequentItemsets::mine(
            &schema,
            &points,
            &AprioriConfig { support_threshold: 0.05, max_itemsets: 1000 },
        );
        for fs in freq.iter() {
            for item in fs.itemset.items() {
                let sub = fs.itemset.without_attr(item.attr());
                let sub_supp = freq.support_of(&sub);
                prop_assert!(sub_supp.is_some());
                prop_assert!(sub_supp.unwrap() >= fs.support - 1e-12);
            }
        }
    }

    /// Subsumption is a strict partial order: irreflexive, asymmetric,
    /// transitive.
    #[test]
    fn subsumption_is_strict_partial_order(
        (a, b, c) in arb_schema().prop_flat_map(|s| {
            (arb_partial(s.clone()), arb_partial(s.clone()), arb_partial(s))
        }),
    ) {
        prop_assert!(!a.subsumes(&a));
        if a.subsumes(&b) {
            prop_assert!(!b.subsumes(&a));
        }
        if a.subsumes(&b) && b.subsumes(&c) {
            prop_assert!(a.subsumes(&c));
        }
    }

    /// A subsumer matches every point its subsumee matches.
    #[test]
    fn subsumer_matches_superset_of_points(
        (schema, t, points) in arb_schema().prop_flat_map(|s| {
            (Just(s.clone()), arb_partial(s.clone()), arb_points(s, 5..20))
        }),
    ) {
        // Drop one assigned attribute to build a strict subsumer.
        if let Some(attr) = t.mask().iter().next() {
            let general = t.without_attr(attr);
            for p in &points {
                if t.matches_point(p) {
                    prop_assert!(general.matches_point(p));
                }
            }
        }
        let _ = schema;
    }

    /// Voted CPDs are strictly positive distributions for any evidence.
    #[test]
    fn voted_cpds_are_distributions(
        (schema, points, t) in arb_schema().prop_flat_map(|s| {
            (Just(s.clone()), arb_points(s.clone(), 10..40), arb_partial(s))
        }),
    ) {
        let model = MrslModel::learn(
            &schema,
            &points,
            &LearnConfig { support_threshold: 0.05, max_itemsets: 200 },
        );
        for attr in schema.attr_ids() {
            if t.get(attr).is_some() {
                continue;
            }
            for voting in VotingConfig::table2_order() {
                let cpd = InferContext::new(&model, voting, 0).vote_single(&t, attr);
                prop_assert_eq!(cpd.len(), schema.cardinality(attr));
                let sum: f64 = cpd.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
                prop_assert!(cpd.iter().all(|&p| p > 0.0));
            }
        }
    }

    /// Tuple-DAG edges are sound: every parent strictly subsumes its child,
    /// roots have no subsumers, and no cover edge skips an intermediate.
    #[test]
    fn tuple_dag_edges_are_covers(
        workload in arb_schema().prop_flat_map(|s| {
            prop::collection::vec(arb_partial(s), 1..12)
        }),
    ) {
        let dag = TupleDag::build(&workload);
        let nodes = dag.nodes();
        for s in 0..dag.len() {
            for &p in dag.parents(s) {
                prop_assert!(nodes[p].subsumes(&nodes[s]));
                // Cover property: no node sits strictly between p and s.
                for m in 0..dag.len() {
                    if m != p && m != s {
                        prop_assert!(
                            !(nodes[p].subsumes(&nodes[m]) && nodes[m].subsumes(&nodes[s])),
                            "edge {p}->{s} skips {m}"
                        );
                    }
                }
            }
        }
        for &r in dag.roots() {
            for other in 0..dag.len() {
                if other != r {
                    prop_assert!(!nodes[other].subsumes(&nodes[r]));
                }
            }
        }
    }

    /// Variable elimination equals brute-force joint enumeration on random
    /// small networks with random evidence.
    #[test]
    fn variable_elimination_matches_brute_force(
        cards in prop::collection::vec(2usize..=3, 2..=4),
        seed in 0u64..5_000,
        evidence_bits in 0u64..16,
    ) {
        let spec = mrsl_repro::bayesnet::builders::chain("p", &cards);
        let bn = BayesianNetwork::instantiate(&spec, 0.8, seed);
        let n = cards.len();
        // Build random evidence from the bits; keep at least one target.
        let mut slots: Vec<Option<u16>> = vec![None; n];
        for (i, slot) in slots.iter_mut().enumerate().take(n - 1) {
            if evidence_bits & (1 << i) != 0 {
                *slot = Some(((seed >> i) % cards[i] as u64) as u16);
            }
        }
        let evidence = PartialTuple::from_options(&slots);
        let targets = evidence.missing_mask();
        prop_assume!(!targets.is_empty());
        let ve = conditional(&bn, targets, &evidence);
        let bf = conditional_brute_force(&bn, targets, &evidence);
        match (ve, bf) {
            (Some(a), Some(b)) => {
                for (x, y) in a.iter().zip(&b) {
                    prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
                }
            }
            (None, None) => {}
            (a, b) => prop_assert!(false, "disagree on feasibility: {a:?} vs {b:?}"),
        }
    }

    /// Masks: union/intersection/difference behave like sets of indices.
    #[test]
    fn mask_set_algebra(xs in prop::collection::btree_set(0u16..20, 0..10),
                        ys in prop::collection::btree_set(0u16..20, 0..10)) {
        let mx = AttrMask::from_attrs(xs.iter().map(|&i| AttrId(i)));
        let my = AttrMask::from_attrs(ys.iter().map(|&i| AttrId(i)));
        let union: std::collections::BTreeSet<u16> = xs.union(&ys).copied().collect();
        let inter: std::collections::BTreeSet<u16> = xs.intersection(&ys).copied().collect();
        let diff: std::collections::BTreeSet<u16> = xs.difference(&ys).copied().collect();
        prop_assert_eq!(mx.union(my).iter().map(|a| a.0).collect::<Vec<_>>(),
                        union.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(mx.intersect(my).iter().map(|a| a.0).collect::<Vec<_>>(),
                        inter.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(mx.difference(my).iter().map(|a| a.0).collect::<Vec<_>>(),
                        diff.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(mx.is_subset(my), xs.is_subset(&ys));
    }

    /// Itemset/tuple round trip preserves identity.
    #[test]
    fn itemset_tuple_roundtrip(
        (schema, t) in arb_schema().prop_flat_map(|s| (Just(s.clone()), arb_partial(s))),
    ) {
        let itemset = Itemset::from_tuple(&t);
        let back = itemset.to_tuple(schema.attr_count());
        prop_assert_eq!(back, t);
    }
}
