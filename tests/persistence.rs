//! Model and database persistence: learned MRSL models and derived
//! probabilistic databases must survive a serde round-trip (the paper
//! frames learning as an offline phase, so models have to be storable).

use mrsl_repro::core::{
    derive_probabilistic_db, DeriveConfig, GibbsConfig, InferContext, LearnConfig, MrslModel,
    VotingConfig,
};
use mrsl_repro::probdb::query::{expected_count, Predicate};
use mrsl_repro::probdb::ProbDb;
use mrsl_repro::relation::relation::fig1_relation;
use mrsl_repro::relation::{AttrId, PartialTuple, ValueId};

fn learned() -> MrslModel {
    let rel = fig1_relation();
    MrslModel::learn(
        rel.schema(),
        rel.complete_part(),
        &LearnConfig {
            support_threshold: 0.01,
            max_itemsets: 1000,
        },
    )
}

#[test]
fn model_roundtrips_through_json() {
    let model = learned();
    let json = serde_json::to_string(&model).expect("model serializes");
    let restored: MrslModel = serde_json::from_str(&json).expect("model deserializes");
    let restored = restored.after_deserialize();
    assert_eq!(restored.size(), model.size());
    // Restored models must produce the same inferences up to float
    // round-trip (serde_json's default parser can be 1 ULP off). Note: the
    // schema inside the restored model lost its lookup maps (serde skip),
    // but inference only uses positional ids — exercise it fully.
    let t = PartialTuple::from_options(&[None, Some(0), Some(0), Some(1)]);
    for voting in VotingConfig::table2_order() {
        let a = InferContext::new(&model, voting, 0).vote_single(&t, AttrId(0));
        let b = InferContext::new(&restored, voting, 0).vote_single(&t, AttrId(0));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "voting {voting:?}: {x} vs {y}");
        }
    }
}

#[test]
fn model_json_is_reasonably_sized() {
    let model = learned();
    let json = serde_json::to_string(&model).expect("serializes");
    // ~112 meta-rules over a 4-attribute schema: the encoding should be
    // tens of kilobytes, not megabytes (guards against accidentally
    // serializing derived indexes).
    assert!(json.len() < 200_000, "model JSON is {} bytes", json.len());
}

#[test]
fn derived_database_roundtrips_through_json() {
    let rel = fig1_relation();
    let out = derive_probabilistic_db(
        &rel,
        &DeriveConfig {
            learn: LearnConfig {
                support_threshold: 0.05,
                max_itemsets: 1000,
            },
            gibbs: GibbsConfig {
                burn_in: 30,
                samples: 200,
                ..GibbsConfig::default()
            },
            ..DeriveConfig::default()
        },
    );
    let json = serde_json::to_string(&out.db).expect("db serializes");
    let restored: ProbDb = serde_json::from_str(&json).expect("db deserializes");
    assert_eq!(restored.blocks().len(), out.db.blocks().len());
    assert_eq!(restored.certain().len(), out.db.certain().len());
    // Queries over the restored database agree exactly.
    let pred = Predicate::any().and_eq(AttrId(0), ValueId(0));
    assert_eq!(
        expected_count(&restored, &pred),
        expected_count(&out.db, &pred)
    );
}
