//! Statistical recovery tests: the MRSL ensemble must converge to the
//! generating network's conditionals as data grows (the premise behind the
//! paper's Table II / Fig. 5 results).

use mrsl_repro::bayesnet::builders::{chain, crown, independent};
use mrsl_repro::bayesnet::{conditional, BayesianNetwork};
use mrsl_repro::core::{InferContext, LearnConfig, MrslModel, VotingConfig};
use mrsl_repro::eval::{kl_divergence, total_variation};
use mrsl_repro::relation::{AttrId, AttrMask, PartialTuple};

fn learn(bn: &BayesianNetwork, n: usize, theta: f64, seed: u64) -> MrslModel {
    let data = mrsl_repro::bayesnet::sampler::sample_dataset(bn, n, seed);
    MrslModel::learn(
        bn.schema(),
        &data,
        &LearnConfig {
            support_threshold: theta,
            max_itemsets: 1000,
        },
    )
}

#[test]
fn root_meta_rule_converges_to_marginal() {
    let spec = crown("crown", &[2, 3, 2, 3]);
    let bn = BayesianNetwork::instantiate(&spec, 0.8, 5);
    let model = learn(&bn, 30_000, 0.001, 1);
    for attr in bn.schema().attr_ids() {
        let mrsl = model.mrsl(attr);
        let root_cpd = mrsl.rule(mrsl.root()).cpd();
        let truth = bn.marginal(attr);
        let tv = total_variation(root_cpd, &truth);
        assert!(tv < 0.02, "attr {attr:?}: TV {tv}");
    }
}

#[test]
fn conditional_estimates_converge_on_chain() {
    // On a chain, P(x1 | x0, x2) is the textbook conditional; the ensemble
    // with full evidence must approach it.
    let spec = chain("chain", &[2, 3, 2]);
    let bn = BayesianNetwork::instantiate(&spec, 0.7, 9);
    let model = learn(&bn, 40_000, 0.001, 2);
    let mut worst: f64 = 0.0;
    for x0 in 0..2u16 {
        for x2 in 0..2u16 {
            let t = PartialTuple::from_options(&[Some(x0), None, Some(x2)]);
            let Some(truth) = conditional(&bn, AttrMask::single(AttrId(1)), &t) else {
                continue;
            };
            let est = InferContext::new(&model, VotingConfig::best_averaged(), 0)
                .vote_single(&t, AttrId(1));
            worst = worst.max(kl_divergence(&truth, &est));
        }
    }
    assert!(worst < 0.05, "worst-case KL {worst}");
}

#[test]
fn independent_network_estimates_ignore_irrelevant_evidence() {
    // For independent attributes the target's marginal is the truth no
    // matter the evidence; the ensemble should stay close to it.
    let spec = independent("ind", &[3, 2, 2]);
    let bn = BayesianNetwork::instantiate(&spec, 0.6, 4);
    let model = learn(&bn, 60_000, 0.001, 7);
    let truth = bn.marginal(AttrId(0));
    for e1 in 0..2u16 {
        for e2 in 0..2u16 {
            let t = PartialTuple::from_options(&[None, Some(e1), Some(e2)]);
            let est = InferContext::new(&model, VotingConfig::best_averaged(), 0)
                .vote_single(&t, AttrId(0));
            let kl = kl_divergence(&truth, &est);
            assert!(kl < 0.05, "evidence ({e1},{e2}): KL {kl}");
        }
    }
}

#[test]
fn best_voting_beats_all_voting_at_scale() {
    // The paper's headline (Table II): with enough data the most specific
    // voters model the space more closely (lower bias).
    let spec = chain("chain", &[2, 2, 2, 2]);
    let bn = BayesianNetwork::instantiate(&spec, 0.4, 21);
    let model = learn(&bn, 50_000, 0.001, 3);
    let mut kl_best = 0.0;
    let mut kl_all = 0.0;
    let mut n = 0;
    let test = mrsl_repro::bayesnet::sampler::sample_dataset(&bn, 300, 77);
    for p in &test {
        let t = p.to_partial().without_attr(AttrId(2));
        let Some(truth) = conditional(&bn, AttrMask::single(AttrId(2)), &t) else {
            continue;
        };
        kl_best += kl_divergence(
            &truth,
            &InferContext::new(&model, VotingConfig::best_averaged(), 0).vote_single(&t, AttrId(2)),
        );
        kl_all += kl_divergence(
            &truth,
            &InferContext::new(&model, VotingConfig::all_averaged(), 0).vote_single(&t, AttrId(2)),
        );
        n += 1;
    }
    assert!(n > 200);
    assert!(
        kl_best < kl_all,
        "best {kl_best} should beat all {kl_all} over {n} tuples"
    );
}

#[test]
fn truncated_mining_still_yields_usable_model() {
    // Cap maxItemsets aggressively: the model shrinks but inference still
    // works and stays normalized.
    let spec = crown("crown", &[3, 3, 3, 3, 3, 3]);
    let bn = BayesianNetwork::instantiate(&spec, 0.5, 31);
    let data = mrsl_repro::bayesnet::sampler::sample_dataset(&bn, 5_000, 1);
    let full = MrslModel::learn(
        bn.schema(),
        &data,
        &LearnConfig {
            support_threshold: 0.002,
            max_itemsets: 1000,
        },
    );
    let truncated = MrslModel::learn(
        bn.schema(),
        &data,
        &LearnConfig {
            support_threshold: 0.002,
            max_itemsets: 10,
        },
    );
    assert!(truncated.size() < full.size());
    assert!(truncated.stats().mining.truncated);
    let t = PartialTuple::from_options(&[None, Some(0), Some(1), None, None, Some(2)]);
    let cpd =
        InferContext::new(&truncated, VotingConfig::best_averaged(), 0).vote_single(&t, AttrId(0));
    assert!((cpd.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!(cpd.iter().all(|&p| p > 0.0));
}
