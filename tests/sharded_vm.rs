//! Sharded parallel-execution suite.
//!
//! The sharded fold must be **bit-identical** — not epsilon-close — to
//! the sequential VM and to the reference interpreter at every thread
//! count and every shard count, for `Probability`, `ProbabilityBounds`
//! and `ExpectedCount`. Incremental register maintenance must patch only
//! the shards an upsert touched, leave the cache entry valid, and still
//! produce the exact bits a fresh bind would.

use mrsl_repro::probdb::{
    Alternative, Block, Catalog, CatalogEngine, PlanRoute, Predicate, ProbDb, Query,
    QueryEngineConfig, Statistic,
};
use mrsl_repro::relation::{AttrId, CompleteTuple, Schema, ValueId};
use proptest::prelude::*;

fn alt(values: Vec<u16>, prob: f64) -> Alternative {
    Alternative {
        tuple: CompleteTuple::from_values(values),
        prob,
    }
}

/// Interpreter reference: compiled plans off, brackets never refined.
fn interp_config() -> QueryEngineConfig {
    QueryEngineConfig {
        compile_plans: false,
        bounds_tolerance: 1.0,
        ..QueryEngineConfig::default()
    }
}

/// VM under test at an explicit shard count (`0` = auto). Brackets are
/// never refined so bounds stay deterministic.
fn vm_config(shards: usize) -> QueryEngineConfig {
    QueryEngineConfig {
        bounds_tolerance: 1.0,
        shards,
        ..QueryEngineConfig::default()
    }
}

/// Evaluates one statistic and returns the answer's float payload as raw
/// bits, so comparisons are exact by construction.
fn eval_bits(engine: &CatalogEngine, q: &Query, stat: Statistic) -> (Vec<u64>, PlanRoute) {
    use mrsl_repro::probdb::QueryAnswer;
    let (answer, report) = engine.evaluate(q, stat).expect("evaluates");
    let bits = match answer {
        QueryAnswer::Probability { p, std_error } => {
            let mut v = vec![p.to_bits()];
            v.extend(std_error.map(f64::to_bits));
            v
        }
        QueryAnswer::Bounds(b) => {
            let mut v = vec![b.lower.to_bits(), b.upper.to_bits()];
            v.extend(b.estimate.map(f64::to_bits));
            v.extend(b.std_error.map(f64::to_bits));
            v
        }
        QueryAnswer::Count { mean, std_error } => {
            let mut v = vec![mean.to_bits()];
            v.extend(std_error.map(f64::to_bits));
            v
        }
        other => panic!("unexpected answer shape: {other:?}"),
    };
    (bits, report.route)
}

const STATS: [Statistic; 3] = [
    Statistic::Probability,
    Statistic::ProbabilityBounds,
    Statistic::ExpectedCount,
];

const THREADS: [usize; 3] = [1, 2, 8];
const SHARDS: [usize; 3] = [1, 4, 16];

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("pool builds")
        .install(f)
}

/// Asserts that every (threads × shards) combination reproduces the
/// interpreter's bits exactly, cold and warm.
fn assert_sharded_matches_interpreter(catalog: &Catalog, q: &Query) {
    let interp = CatalogEngine::with_config(catalog, interp_config());
    let reference: Vec<Vec<u64>> = STATS
        .iter()
        .map(|&stat| eval_bits(&interp, q, stat).0)
        .collect();
    for threads in THREADS {
        for shards in SHARDS {
            with_threads(threads, || {
                let vm = CatalogEngine::with_config(catalog, vm_config(shards));
                for (i, &stat) in STATS.iter().enumerate() {
                    let (cold, _) = eval_bits(&vm, q, stat);
                    assert_eq!(
                        reference[i], cold,
                        "cold diverges on {stat:?} at {threads} threads x {shards} shards"
                    );
                    let (warm, route) = eval_bits(&vm, q, stat);
                    assert_eq!(route, PlanRoute::CacheHit, "{stat:?}");
                    assert_eq!(
                        reference[i], warm,
                        "warm diverges on {stat:?} at {threads} threads x {shards} shards"
                    );
                }
            });
        }
    }
}

/// `r(k, ok)`: every block sits at one key, present when `ok = yes`.
fn keyed_relation(blocks: &[(u16, f64)], certain: &[u16]) -> ProbDb {
    let schema = Schema::builder()
        .attribute("k", ["k0", "k1", "k2"])
        .attribute("ok", ["no", "yes"])
        .build()
        .unwrap();
    let mut db = ProbDb::new(schema);
    for &k in certain {
        db.push_certain(CompleteTuple::from_values(vec![k, 1]))
            .unwrap();
    }
    for (i, &(k, p)) in blocks.iter().enumerate() {
        db.push_block(Block::new(i, vec![alt(vec![k, 0], 1.0 - p), alt(vec![k, 1], p)]).unwrap())
            .unwrap();
    }
    db
}

fn ok() -> Predicate {
    Predicate::eq(AttrId(1), ValueId(1))
}

/// The unsafe chain `R(x), S(x,y), T(y)` with key-unique blocks — the
/// dissociable fixture whose bounds programs exercise the replicated
/// roots and both mass transforms.
fn chain_catalog(rp: [f64; 2], sp: [f64; 3], tp: [f64; 2]) -> Catalog {
    let one = |n: &str| {
        Schema::builder()
            .attribute(n, ["v0", "v1"])
            .attribute("ok", ["no", "yes"])
            .build()
            .unwrap()
    };
    let two = Schema::builder()
        .attribute("x", ["v0", "v1"])
        .attribute("y", ["v0", "v1"])
        .attribute("ok", ["no", "yes"])
        .build()
        .unwrap();
    let pair = |k: u16, p: f64| vec![alt(vec![k, 0], 1.0 - p), alt(vec![k, 1], p)];
    let spair = |x: u16, y: u16, p: f64| vec![alt(vec![x, y, 0], 1.0 - p), alt(vec![x, y, 1], p)];
    let mut r = ProbDb::new(one("x"));
    r.push_block(Block::new(0, pair(0, rp[0])).unwrap())
        .unwrap();
    r.push_block(Block::new(1, pair(1, rp[1])).unwrap())
        .unwrap();
    let mut s = ProbDb::new(two);
    s.push_block(Block::new(0, spair(0, 1, sp[0])).unwrap())
        .unwrap();
    s.push_block(Block::new(1, spair(1, 0, sp[1])).unwrap())
        .unwrap();
    s.push_block(Block::new(2, spair(0, 0, sp[2])).unwrap())
        .unwrap();
    let mut t = ProbDb::new(one("y"));
    t.push_block(Block::new(0, pair(0, tp[0])).unwrap())
        .unwrap();
    t.push_block(Block::new(1, pair(1, tp[1])).unwrap())
        .unwrap();
    let mut catalog = Catalog::new();
    catalog.add("r", r).unwrap();
    catalog.add("s", s).unwrap();
    catalog.add("t", t).unwrap();
    catalog
}

fn chain_query() -> Query {
    let ok3 = Predicate::eq(AttrId(2), ValueId(1));
    Query::scan("r")
        .filter(ok())
        .join_on(Query::scan("s").filter(ok3), [(AttrId(0), AttrId(0))])
        .join_on_rel("s", Query::scan("t").filter(ok()), [(AttrId(1), AttrId(0))])
}

fn arb_prob() -> impl Strategy<Value = f64> {
    (1u32..=19).prop_map(|w| w as f64 / 20.0)
}

fn arb_keyed_blocks() -> impl Strategy<Value = Vec<(u16, f64)>> {
    prop::collection::vec((0u16..3, arb_prob()), 1..6)
}

fn arb_probs2() -> impl Strategy<Value = [f64; 2]> {
    (arb_prob(), arb_prob()).prop_map(|(a, b)| [a, b])
}

fn arb_probs3() -> impl Strategy<Value = [f64; 3]> {
    (arb_prob(), arb_prob(), arb_prob()).prop_map(|(a, b, c)| [a, b, c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Hierarchical keyed joins: the partition fold is the sharded root,
    /// so every thread/shard combination must reproduce the sequential
    /// bits on all three statistics.
    #[test]
    fn sharded_hierarchical_joins_are_bit_identical(
        ((lb, rb), (lc, rc)) in (
            (arb_keyed_blocks(), arb_keyed_blocks()),
            (
                prop::collection::vec(0u16..3, 0..3),
                prop::collection::vec(0u16..3, 0..3),
            ),
        )
    ) {
        let mut catalog = Catalog::new();
        catalog.add("left", keyed_relation(&lb, &lc)).unwrap();
        catalog.add("right", keyed_relation(&rb, &rc)).unwrap();
        let q = Query::scan("left").filter(ok()).join_on(
            Query::scan("right").filter(ok()),
            [(AttrId(0), AttrId(0))],
        );
        assert_sharded_matches_interpreter(&catalog, &q);
    }

    /// Dissociable chains: the sharded bracket (both candidate programs,
    /// replicated-branch counting split across shards) and the chunked
    /// mass-table join must reproduce the interpreter bits exactly.
    #[test]
    fn sharded_dissociation_brackets_are_bit_identical(
        (rp, sp, tp) in (arb_probs2(), arb_probs3(), arb_probs2())
    ) {
        let catalog = chain_catalog(rp, sp, tp);
        assert_sharded_matches_interpreter(&catalog, &chain_query());
    }
}

/// An upsert into one key range patches that shard's register columns in
/// place: the cache entry survives (no invalidation), untouched terms and
/// shards are reused verbatim, and the patched registers produce exactly
/// the bits a fresh bind over the mutated catalog produces.
#[test]
fn upserts_patch_only_the_touched_shard() {
    let mut catalog = Catalog::new();
    catalog
        .add(
            "left",
            keyed_relation(&[(0, 0.3), (1, 0.6), (2, 0.8), (0, 0.4)], &[1]),
        )
        .unwrap();
    catalog
        .add("right", keyed_relation(&[(0, 0.5), (2, 0.7)], &[0]))
        .unwrap();
    let q = Query::scan("left")
        .filter(ok())
        .join_on(Query::scan("right").filter(ok()), [(AttrId(0), AttrId(0))]);
    let cache = {
        let engine = CatalogEngine::with_config(&catalog, vm_config(4));
        let (_, route) = eval_bits(&engine, &q, Statistic::Probability);
        assert_eq!(route, PlanRoute::Compiled);
        // Registers are memoized by warm executions: hit once so the
        // upsert below has a memo to patch.
        let (_, route) = eval_bits(&engine, &q, Statistic::Probability);
        assert_eq!(route, PlanRoute::CacheHit);
        engine.plan_cache().clone()
    };
    let base = cache.stats();
    // Upsert one block at key 2: only that key's shard moves in `left`;
    // `right` is untouched.
    catalog
        .get_mut("left")
        .unwrap()
        .push_block(Block::new(4, vec![alt(vec![2, 0], 0.45), alt(vec![2, 1], 0.55)]).unwrap())
        .unwrap();
    let warm = CatalogEngine::with_plan_cache(&catalog, vm_config(4), cache.clone());
    let (wbits, wroute) = eval_bits(&warm, &q, Statistic::Probability);
    assert_eq!(wroute, PlanRoute::CacheHit);
    // Fresh bind over the mutated catalog — the patched registers must
    // reproduce it bit-for-bit.
    let fresh = CatalogEngine::with_config(&catalog, vm_config(4));
    let (fbits, _) = eval_bits(&fresh, &q, Statistic::Probability);
    assert_eq!(wbits, fbits, "patched registers diverge from a fresh bind");
    let (ibits, _) = eval_bits(
        &CatalogEngine::with_config(&catalog, interp_config()),
        &q,
        Statistic::Probability,
    );
    assert_eq!(
        wbits, ibits,
        "patched registers diverge from the interpreter"
    );
    let stats = cache.stats();
    assert_eq!(stats.invalidations, 0, "{stats:?}");
    assert_eq!(
        stats.reg_patches - base.reg_patches,
        1,
        "only `left` should be patched: {stats:?}"
    );
    assert_eq!(
        stats.reg_rebinds, base.reg_rebinds,
        "no term should fully rebind: {stats:?}"
    );
}

/// A mutation that dirties every populated shard of a term (or reshapes
/// the whole key domain) falls back to a full rebind — still without
/// invalidating the entry — and stays bit-identical.
#[test]
fn whole_domain_mutations_fall_back_to_rebind() {
    let mut catalog = Catalog::new();
    catalog
        .add("left", keyed_relation(&[(0, 0.3), (1, 0.6), (2, 0.8)], &[]))
        .unwrap();
    catalog
        .add(
            "right",
            keyed_relation(&[(0, 0.5), (1, 0.7), (2, 0.2)], &[]),
        )
        .unwrap();
    let q = Query::scan("left")
        .filter(ok())
        .join_on(Query::scan("right").filter(ok()), [(AttrId(0), AttrId(0))]);
    let cache = {
        let engine = CatalogEngine::with_config(&catalog, vm_config(4));
        eval_bits(&engine, &q, Statistic::Probability);
        eval_bits(&engine, &q, Statistic::Probability);
        engine.plan_cache().clone()
    };
    let base = cache.stats();
    // Touch every key once: all populated shards move.
    let left = catalog.get_mut("left").unwrap();
    for (i, k) in [(3usize, 0u16), (4, 1), (5, 2)] {
        left.push_block(Block::new(i, vec![alt(vec![k, 0], 0.5), alt(vec![k, 1], 0.5)]).unwrap())
            .unwrap();
    }
    let warm = CatalogEngine::with_plan_cache(&catalog, vm_config(4), cache.clone());
    let (wbits, wroute) = eval_bits(&warm, &q, Statistic::Probability);
    assert_eq!(wroute, PlanRoute::CacheHit);
    let (ibits, _) = eval_bits(
        &CatalogEngine::with_config(&catalog, interp_config()),
        &q,
        Statistic::Probability,
    );
    assert_eq!(wbits, ibits);
    let stats = cache.stats();
    assert_eq!(stats.invalidations, 0, "{stats:?}");
    assert!(stats.reg_rebinds > base.reg_rebinds, "{stats:?}");
}
