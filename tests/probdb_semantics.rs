//! Possible-world semantics of derived databases: exact query evaluation
//! must agree with both world enumeration and Monte-Carlo estimation.

use mrsl_repro::core::{derive_probabilistic_db, DeriveConfig, GibbsConfig, LearnConfig};
use mrsl_repro::probdb::montecarlo::{mc_count_distribution, mc_expected_count};
use mrsl_repro::probdb::query::{count_distribution, expected_count, top_k, Predicate};
use mrsl_repro::probdb::world::enumerate_worlds;
use mrsl_repro::relation::relation::fig1_relation;
use mrsl_repro::relation::{AttrId, ValueId};

fn derived() -> mrsl_repro::probdb::ProbDb {
    let rel = fig1_relation();
    let config = DeriveConfig {
        learn: LearnConfig {
            support_threshold: 0.05,
            max_itemsets: 1000,
        },
        gibbs: GibbsConfig {
            burn_in: 50,
            samples: 400,
            ..GibbsConfig::default()
        },
        ..DeriveConfig::default()
    };
    derive_probabilistic_db(&rel, &config).db
}

#[test]
fn world_probabilities_of_derived_db_sum_to_one() {
    let db = derived();
    // Fig. 1 derives 9 blocks; enumerate a capped sub-database to keep the
    // world count tractable: take the first 5 blocks only.
    let mut small = mrsl_repro::probdb::ProbDb::new(db.schema().clone());
    for t in db.certain() {
        small.push_certain(t.clone()).unwrap();
    }
    for b in db.blocks().iter().take(5) {
        small.push_block(b.clone()).unwrap();
    }
    let worlds = enumerate_worlds(&small, 2_000_000);
    let total: f64 = worlds.iter().map(|w| w.prob).sum();
    assert!((total - 1.0).abs() < 1e-9, "total world mass {total}");
}

#[test]
fn exact_count_distribution_matches_enumeration_on_derived_db() {
    let db = derived();
    let mut small = mrsl_repro::probdb::ProbDb::new(db.schema().clone());
    for b in db.blocks().iter().take(6) {
        small.push_block(b.clone()).unwrap();
    }
    let pred = Predicate::any().and_eq(AttrId(2), ValueId(0)); // inc = 50K
    let exact = count_distribution(&small, &pred);
    // The shared joint-world oracle is the ground truth here too: wrap
    // the capped database in a one-relation catalog and compare.
    let mut catalog = mrsl_repro::probdb::Catalog::new();
    catalog.add("db", small).unwrap();
    let query = mrsl_repro::probdb::Query::scan("db").filter(pred);
    let brute = mrsl_repro::probdb::testutil::oracle(&catalog, &query, 5_000_000)
        .unwrap()
        .count_distribution;
    // Compare over the longer support so mass beyond either vector's
    // length is caught, not silently skipped.
    for k in 0..exact.len().max(brute.len()) {
        let a = exact.get(k).copied().unwrap_or(0.0);
        let b = brute.get(k).copied().unwrap_or(0.0);
        assert!((a - b).abs() < 1e-9, "count {k}: {a} vs {b}");
    }
}

#[test]
fn monte_carlo_agrees_with_exact_on_derived_db() {
    let db = derived();
    let pred = Predicate::any().and_eq(AttrId(0), ValueId(0)); // age = 20
    let exact = expected_count(&db, &pred);
    let (mc, se) = mc_expected_count(&db, &pred, 30_000, 3).expect("n > 0");
    assert!(
        (mc - exact).abs() < 4.0 * se + 0.05,
        "mc {mc} vs exact {exact} (se {se})"
    );
    let exact_dist = count_distribution(&db, &pred);
    let mc_dist = mc_count_distribution(&db, &pred, 30_000, 4).expect("n > 0");
    for (k, &e) in exact_dist.iter().enumerate() {
        assert!(
            (mc_dist[k] - e).abs() < 0.02,
            "k={k}: {} vs {e}",
            mc_dist[k]
        );
    }
}

#[test]
fn top_k_is_consistent_with_block_contents() {
    let db = derived();
    let ranked = top_k(&db, &Predicate::any(), 1000);
    // Certain tuples rank first with probability 1.
    assert!(ranked[..db.certain().len()].iter().all(|r| r.prob == 1.0));
    // Every ranked block tuple exists in its block with that probability.
    for r in ranked.iter().filter(|r| r.block.is_some()) {
        let block = db
            .blocks()
            .iter()
            .find(|b| b.key() == r.block.unwrap())
            .expect("block exists");
        assert!(block
            .alternatives()
            .iter()
            .any(|a| a.tuple == r.tuple && (a.prob - r.prob).abs() < 1e-12));
    }
}
