//! Property tests of the query subsystem: on randomized databases, the
//! exact columnar evaluators, the tuple-at-a-time reference evaluators and
//! the Monte-Carlo estimators must all tell the same story for every
//! predicate constructor (`Eq`, `In`, `Range`, `Or`, `Not`, `And`).

use mrsl_repro::probdb::query::{self, rowwise};
use mrsl_repro::probdb::{Alternative, Block, Predicate, ProbDb};
use mrsl_repro::relation::{AttrId, CompleteTuple, Schema, SchemaBuilder, ValueId};
use proptest::prelude::*;
use std::sync::Arc;

/// A random small schema: 2–4 attributes, cardinalities 2–5.
fn arb_schema() -> impl Strategy<Value = Arc<Schema>> {
    prop::collection::vec(2usize..=5, 2..=4).prop_map(|cards| {
        let mut b = SchemaBuilder::default();
        for (i, card) in cards.iter().enumerate() {
            b = b.attribute(format!("a{i}"), (0..*card).map(|v| format!("v{v}")));
        }
        b.build().expect("valid schema")
    })
}

/// Random points for a schema.
fn arb_points(schema: Arc<Schema>, n: std::ops::Range<usize>) -> BoxedStrategy<Vec<CompleteTuple>> {
    let cards: Vec<u16> = schema
        .attr_ids()
        .map(|a| schema.cardinality(a) as u16)
        .collect();
    prop::collection::vec(
        cards
            .iter()
            .map(|&c| (0..c).boxed())
            .collect::<Vec<_>>()
            .prop_map(CompleteTuple::from_values),
        n,
    )
    .boxed()
}

/// A random block: 1–4 distinct alternatives with normalized weights.
fn arb_block(schema: Arc<Schema>, key: usize) -> BoxedStrategy<Block> {
    (arb_points(schema, 1..5), prop::collection::vec(1u32..50, 4))
        .prop_map(move |(mut tuples, weights)| {
            tuples.sort_by(|a, b| a.raw().cmp(b.raw()));
            tuples.dedup();
            let total: f64 = weights.iter().take(tuples.len()).map(|&w| w as f64).sum();
            let alts: Vec<Alternative> = tuples
                .into_iter()
                .zip(&weights)
                .map(|(tuple, &w)| Alternative {
                    tuple,
                    prob: w as f64 / total,
                })
                .collect();
            Block::normalized(key, alts).expect("non-empty normalized block")
        })
        .boxed()
}

/// A random database: certain tuples plus blocks.
fn arb_db() -> BoxedStrategy<ProbDb> {
    arb_schema()
        .prop_flat_map(|schema| {
            let certain = arb_points(schema.clone(), 0..6);
            let s = schema.clone();
            let blocks = prop::collection::vec(0u8..1, 1..7).prop_flat_map(move |slots| {
                let s = s.clone();
                slots
                    .iter()
                    .enumerate()
                    .map(|(key, _)| arb_block(s.clone(), key))
                    .collect::<Vec<_>>()
            });
            (Just(schema), certain, blocks)
        })
        .prop_map(|(schema, certain, blocks)| {
            let mut db = ProbDb::new(schema);
            for t in certain {
                db.push_certain(t).expect("arity ok");
            }
            for b in blocks {
                db.push_block(b).expect("arity ok");
            }
            db
        })
        .boxed()
}

/// One random predicate per constructor under test, sized to the schema.
fn predicates_for(schema: &Schema, salt: u16) -> Vec<(&'static str, Predicate)> {
    let arity = schema.attr_count() as u16;
    let a = AttrId(salt % arity);
    let b = AttrId((salt + 1) % arity);
    let card = |attr: AttrId| schema.cardinality(attr) as u16;
    let v = |attr: AttrId, k: u16| ValueId(k % card(attr));
    let lo = v(a, salt);
    let hi = ValueId((lo.0 + 1).min(card(a) - 1));
    vec![
        ("eq", Predicate::eq(a, v(a, salt + 1))),
        ("in", Predicate::is_in(a, [v(a, salt), v(a, salt + 2)])),
        ("range", Predicate::range(a, lo, hi)),
        (
            "or",
            Predicate::eq(a, v(a, salt)).or(Predicate::eq(b, v(b, salt + 1))),
        ),
        ("not", Predicate::eq(b, v(b, salt)).negate()),
        (
            "and-not",
            Predicate::range(a, ValueId(0), hi).and(Predicate::eq(b, v(b, salt)).negate()),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Columnar and per-tuple predicate evaluation are bit-identical, for
    /// every row of both column sets and every constructor.
    #[test]
    fn columnar_eval_is_bit_identical_to_per_tuple(
        (db, salt) in (arb_db(), 0u16..64)
    ) {
        let cols = db.columns();
        for (name, pred) in predicates_for(db.schema(), salt) {
            let certain = pred.eval_columns(cols.certain());
            for (i, t) in db.certain().iter().enumerate() {
                prop_assert_eq!(certain.get(i), pred.eval(t), "{}: certain row {}", name, i);
            }
            let alts = pred.eval_columns(cols.alternatives());
            let mut row = 0;
            for block in db.blocks() {
                for a in block.alternatives() {
                    prop_assert_eq!(alts.get(row), pred.eval(&a.tuple), "{}: alt row {}", name, row);
                    row += 1;
                }
            }
            // And therefore the aggregate evaluators agree exactly.
            prop_assert_eq!(
                query::expected_count(&db, &pred),
                rowwise::expected_count(&db, &pred),
                "{}", name
            );
            prop_assert_eq!(
                query::block_selection_probs(&db, &pred),
                rowwise::block_selection_probs(&db, &pred),
                "{}", name
            );
            prop_assert_eq!(
                query::count_distribution(&db, &pred),
                rowwise::count_distribution(&db, &pred),
                "{}", name
            );
        }
    }

    /// Exact and Monte-Carlo count distributions agree within MC error on
    /// randomized databases, for every predicate constructor.
    #[test]
    fn exact_and_monte_carlo_distributions_agree(
        (db, salt) in (arb_db(), 0u16..64)
    ) {
        for (name, pred) in predicates_for(db.schema(), salt) {
            let exact = query::count_distribution(&db, &pred);
            let n = 6_000;
            let mc = mrsl_repro::probdb::montecarlo::mc_count_distribution(
                &db, &pred, n, 0xc0de ^ salt as u64,
            ).expect("n > 0");
            // Each bin is a Bernoulli frequency: 4σ + slack covers it.
            for (k, &e) in exact.iter().enumerate() {
                let sigma = (e * (1.0 - e) / n as f64).sqrt();
                prop_assert!(
                    (mc[k] - e).abs() < 4.0 * sigma + 0.02,
                    "{}: k={} exact {} mc {}", name, k, e, mc[k]
                );
            }
            // Means line up with the exact expected count too.
            let (mean, se) = mrsl_repro::probdb::montecarlo::mc_expected_count(
                &db, &pred, n, 0xfeed ^ salt as u64,
            ).expect("n > 0");
            let exact_mean = query::expected_count(&db, &pred);
            prop_assert!(
                (mean - exact_mean).abs() < 4.0 * se + 0.05,
                "{}: mean {} vs {}", name, mean, exact_mean
            );
        }
    }

    /// The planner's two physical paths answer the same question: routing
    /// the count distribution through Monte Carlo (tiny DP budget) stays
    /// within sampling error of the exact path.
    #[test]
    fn planner_paths_agree_on_count_distribution(
        (db, salt) in (arb_db(), 0u16..64)
    ) {
        use mrsl_repro::probdb::{Catalog, CatalogEngine, EvalPath, Query, QueryEngineConfig};
        let (_, pred) = predicates_for(db.schema(), salt).pop().expect("non-empty");
        let mut catalog = Catalog::new();
        catalog.add("db", db).expect("fresh catalog");
        let query = Query::scan("db").filter(pred);
        let exact_engine = CatalogEngine::new(&catalog);
        let mc_engine = CatalogEngine::with_config(&catalog, QueryEngineConfig {
            max_exact_dp_blocks: 0,
            mc_samples: 6_000,
            mc_seed: 0xab ^ salt as u64,
            ..QueryEngineConfig::default()
        });
        let (exact, exact_report) = exact_engine.count_distribution(&query).expect("exact");
        let (mc, mc_report) = mc_engine.count_distribution(&query).expect("mc");
        prop_assert_eq!(exact_report.path, EvalPath::ExactColumnar);
        prop_assert_eq!(mc_report.path, EvalPath::MonteCarlo);
        prop_assert_eq!(mc_report.mc_samples, 6_000);
        for (k, &e) in exact.iter().enumerate() {
            prop_assert!((mc[k] - e).abs() < 0.05, "k={} exact {} mc {}", k, e, mc[k]);
        }
        // The report's pruning arithmetic is internally consistent.
        prop_assert_eq!(
            exact_report.blocks_touched + exact_report.blocks_pruned,
            exact_report.blocks_total
        );
    }

    /// Word-masked `Bitmap::count_ones_in` / `any_in` agree with the naive
    /// bit-by-bit traversal on arbitrary bitmaps and ranges.
    #[test]
    fn bitmap_range_kernels_match_naive(
        (bits, ranges) in (
            prop::collection::vec(0u8..2, 1..400),
            prop::collection::vec((0usize..400, 0usize..400), 1..20),
        )
    ) {
        use mrsl_repro::probdb::Bitmap;
        let mut bm = Bitmap::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b == 1 {
                bm.set(i);
            }
        }
        for (a, b) in ranges {
            let lo = a.min(b) % bits.len();
            let hi = (a.max(b) % bits.len()).max(lo);
            let naive = (lo..hi).filter(|&i| bits[i] == 1).count();
            prop_assert_eq!(bm.count_ones_in(lo..hi), naive, "count in {}..{}", lo, hi);
            prop_assert_eq!(bm.any_in(lo..hi), naive > 0, "any in {}..{}", lo, hi);
        }
    }

    /// On randomly generated two-relation catalogs whose blocks keep a
    /// unique join key, a selective equi-join is classified `Liftable` and
    /// its exact probability and expected count agree with the
    /// multi-relation Monte-Carlo sampler within error.
    #[test]
    fn hierarchical_join_exact_agrees_with_monte_carlo(
        (left, right, salt) in (arb_keyed_db(0), arb_keyed_db(1), 0u16..64)
    ) {
        use mrsl_repro::probdb::{
            Catalog, CatalogEngine, EvalPath, PlanClass, Predicate, Query, QueryAnswer,
            QueryEngineConfig, Statistic,
        };
        let vl = ValueId(salt % 3);
        let vr = ValueId((salt / 3) % 3);
        let query = Query::scan("left")
            .filter(Predicate::eq(AttrId(1), vl))
            .join_on(
                Query::scan("right").filter(Predicate::eq(AttrId(1), vr)),
                [(AttrId(0), AttrId(0))],
            );
        let mut catalog = Catalog::new();
        catalog.add("left", left).expect("fresh catalog");
        catalog.add("right", right).expect("fresh catalog");
        let exact_engine = CatalogEngine::new(&catalog);
        let (path, plan) = exact_engine.plan(&query, Statistic::Probability).expect("plan");
        prop_assert_eq!(path, EvalPath::ExactColumnar);
        prop_assert_eq!(plan, PlanClass::Liftable);
        let (p, _) = exact_engine.probability(&query).expect("exact");
        let (count, _) = exact_engine.expected_count(&query).expect("exact");
        let n = 6_000;
        let mc_engine = CatalogEngine::with_config(&catalog, QueryEngineConfig {
            force_monte_carlo: true,
            mc_samples: n,
            mc_seed: 0x7013 ^ salt as u64,
            ..QueryEngineConfig::default()
        });
        let (answer, _) = mc_engine.evaluate(&query, Statistic::Probability).expect("mc");
        let QueryAnswer::Probability { p: mc_p, std_error } = answer else {
            panic!("probability expected");
        };
        let se = std_error.expect("MC std error").max(1e-9);
        prop_assert!(
            (p - mc_p).abs() < 4.0 * se + 0.02,
            "P: exact {} mc {} (se {})", p, mc_p, se
        );
        let (answer, _) = mc_engine.evaluate(&query, Statistic::ExpectedCount).expect("mc");
        let QueryAnswer::Count { mean, std_error } = answer else {
            panic!("count expected");
        };
        let se = std_error.expect("MC std error").max(1e-9);
        prop_assert!(
            (count - mean).abs() < 4.0 * se + 0.05,
            "E: exact {} mc {} (se {})", count, mean, se
        );
    }
}

/// A random relation over `(k, v)` where `k` is a shared join dictionary
/// (cardinality 4) and every block keeps one `k`: the shape lazy
/// derivation produces when the join key is observed.
fn arb_keyed_db(flavor: u16) -> BoxedStrategy<ProbDb> {
    let schema = Schema::builder()
        .attribute("k", (0..4).map(|v| format!("k{v}")))
        .attribute("v", (0..3).map(|v| format!("v{v}")))
        .build()
        .expect("valid schema");
    let certain = prop::collection::vec((0u16..4, 0u16..3), 0..4);
    let blocks = prop::collection::vec(
        (0u16..4, prop::collection::vec((0u16..3, 1u32..50), 1..4)),
        1..5,
    );
    (certain, blocks)
        .prop_map(move |(certain, blocks)| {
            let mut db = ProbDb::new(schema.clone());
            let _ = flavor;
            for (k, v) in certain {
                db.push_certain(CompleteTuple::from_values(vec![k, v]))
                    .expect("arity ok");
            }
            for (key, (k, alts)) in blocks.into_iter().enumerate() {
                let mut seen = Vec::new();
                let mut alternatives = Vec::new();
                for (v, w) in alts {
                    if seen.contains(&v) {
                        continue;
                    }
                    seen.push(v);
                    alternatives.push(Alternative {
                        tuple: CompleteTuple::from_values(vec![k, v]),
                        prob: w as f64,
                    });
                }
                db.push_block(Block::normalized(key, alternatives).expect("non-empty"))
                    .expect("arity ok");
            }
            db
        })
        .boxed()
}
