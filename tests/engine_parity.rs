//! Engine-layer guarantees across the refactored inference stack:
//!
//! * the `GibbsSampler` engine reproduces the legacy `infer_joint` free
//!   function bit-for-bit under a fixed seed (the refactor changed the
//!   plumbing, not the chain);
//! * the `IndependentBaseline` measurably diverges from Gibbs on a
//!   correlated two-attribute tuple (the paper's §V ablation claim);
//! * `infer_batch` and `derive_probabilistic_db` yield bit-identical
//!   results regardless of the executor's thread count.

use mrsl_repro::core::{
    derive_probabilistic_db, infer_batch, workload_engine, DeriveConfig, GibbsConfig, GibbsSampler,
    IndependentBaseline, InferContext, InferenceEngine, LearnConfig, MrslModel, TupleDagWorkload,
    VotingConfig, WorkloadStrategy,
};
use mrsl_repro::relation::relation::fig1_relation;
use mrsl_repro::relation::{AttrId, JointIndexer, PartialTuple, ValueId};
use mrsl_repro::util::{derive_seed, seeded_rng};
use rand::Rng;

fn model() -> MrslModel {
    let rel = fig1_relation();
    MrslModel::learn(
        rel.schema(),
        rel.complete_part(),
        &LearnConfig {
            support_threshold: 0.01,
            max_itemsets: 1000,
        },
    )
}

fn gibbs_config(burn_in: usize, samples: usize) -> GibbsConfig {
    GibbsConfig {
        burn_in,
        samples,
        voting: VotingConfig::best_averaged(),
    }
}

/// An independent reimplementation of the pre-refactor `infer_joint`
/// sampler, built only from public primitives (per-attribute voting, no
/// CPD cache, no engine plumbing). Comparing the engine against *this* —
/// rather than against the shim, which now delegates to the engine —
/// makes the parity check non-vacuous: it proves the refactor preserved
/// the chain (seed expansion, uniform init, ordered sweeps, categorical
/// draws) and that the context's CPD cache is value-transparent.
fn reference_infer_joint(
    m: &MrslModel,
    t: &PartialTuple,
    burn_in: usize,
    samples: usize,
    voting: VotingConfig,
    seed: u64,
) -> Vec<f64> {
    let schema = m.schema();
    let mut rng = seeded_rng(derive_seed(seed, &[0x61bb5]));
    let mut state = vec![0u16; schema.attr_count()];
    for asg in t.assignments() {
        state[asg.attr.index()] = asg.value.0;
    }
    let missing: Vec<AttrId> = t.missing_mask().iter().collect();
    for &a in &missing {
        state[a.index()] = rng.gen_range(0..schema.cardinality(a)) as u16;
    }
    let mut ctx = InferContext::new(m, voting, 0);
    let mut sweep = |state: &mut Vec<u16>, rng: &mut rand::rngs::StdRng| {
        for &attr in &missing {
            // Voting evidence: every attribute except the one resampled,
            // clamped to the current chain state.
            let mut slots: Vec<Option<u16>> = state.iter().map(|&v| Some(v)).collect();
            slots[attr.index()] = None;
            let evidence = PartialTuple::from_options(&slots);
            let cpd = ctx.vote_single(&evidence, attr);
            let mut u: f64 = rng.gen::<f64>();
            let mut chosen = cpd.iter().rposition(|&w| w > 0.0).expect("positive CPD") as u16;
            for (i, &w) in cpd.iter().enumerate() {
                if u < w {
                    chosen = i as u16;
                    break;
                }
                u -= w;
            }
            state[attr.index()] = chosen;
        }
    };
    for _ in 0..burn_in {
        sweep(&mut state, &mut rng);
    }
    let indexer = JointIndexer::new(schema, t.missing_mask());
    let mut counts = vec![0u32; indexer.size()];
    for _ in 0..samples {
        sweep(&mut state, &mut rng);
        let combo: Vec<ValueId> = indexer
            .attrs()
            .iter()
            .map(|a| ValueId(state[a.index()]))
            .collect();
        counts[indexer.index_of(&combo)] += 1;
    }
    counts
        .into_iter()
        .map(|c| c as f64 / samples as f64)
        .collect()
}

#[test]
#[allow(deprecated)]
fn gibbs_engine_reproduces_legacy_sampler_exactly() {
    let m = model();
    let config = gibbs_config(60, 800);
    // Every incomplete-tuple shape of Fig. 1, several seeds.
    let tuples = [
        PartialTuple::from_options(&[Some(0), Some(0), None, None]),
        PartialTuple::from_options(&[Some(0), None, Some(0), None]),
        PartialTuple::from_options(&[Some(0), None, None, None]),
        PartialTuple::from_options(&[None, Some(0), None, None]),
        PartialTuple::from_options(&[None, None, None, None]),
    ];
    for (i, t) in tuples.iter().enumerate() {
        for seed in [0u64, 7, 0xdead_beef] {
            let reference =
                reference_infer_joint(&m, t, config.burn_in, config.samples, config.voting, seed);
            let mut ctx = InferContext::new(&m, config.voting, seed);
            let engine = GibbsSampler::from_config(&config).estimate(&mut ctx, t);
            assert_eq!(reference, engine.probs, "tuple {i}, seed {seed}");
            // The deprecated shim must ride the same path.
            let shim = mrsl_repro::core::infer_joint(&m, t, &config, seed);
            assert_eq!(shim.probs, engine.probs, "tuple {i}, seed {seed}");
            assert_eq!(shim.sample_count, engine.sample_count);
        }
    }
}

#[test]
fn independent_baseline_diverges_from_gibbs_on_correlated_tuple() {
    // Fig. 1's Rc strongly correlates inc and nw given ⟨20, HS⟩ (§V's
    // motivating example): the Gibbs joint captures that, the product
    // baseline cannot. Total variation between the two must be visible.
    let m = model();
    let t = PartialTuple::from_options(&[Some(0), Some(0), None, None]);
    let mut ctx = InferContext::new(&m, VotingConfig::best_averaged(), 11);
    let gibbs = GibbsSampler {
        burn_in: 300,
        samples: 20_000,
    }
    .estimate(&mut ctx, &t);
    let independent = IndependentBaseline.estimate(&mut ctx, &t);
    assert_eq!(gibbs.probs.len(), independent.probs.len());
    let total_variation: f64 = gibbs
        .probs
        .iter()
        .zip(&independent.probs)
        .map(|(g, i)| (g - i).abs())
        .sum::<f64>()
        / 2.0;
    assert!(
        total_variation > 0.05,
        "expected a visible gap on a correlated tuple, got TV {total_variation}"
    );
    // Sanity: both are distributions over the same 2×2 joint.
    assert!((gibbs.probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!((independent.probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

#[test]
fn infer_batch_is_bit_identical_across_thread_counts() {
    let m = model();
    let workload: Vec<PartialTuple> = fig1_relation().incomplete_part().to_vec();
    let config = gibbs_config(50, 400);
    for strategy in [WorkloadStrategy::TupleAtATime, WorkloadStrategy::TupleDag] {
        let engine = workload_engine(strategy, &config);
        let reference = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool")
            .install(|| infer_batch(&m, &workload, engine.as_ref(), config.voting, 5));
        for threads in [2, 4, 16] {
            let run = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool")
                .install(|| infer_batch(&m, &workload, engine.as_ref(), config.voting, 5));
            assert_eq!(reference.estimates.len(), run.estimates.len());
            for (a, b) in reference.estimates.iter().zip(&run.estimates) {
                assert_eq!(a.probs, b.probs, "{strategy:?} with {threads} threads");
            }
            assert_eq!(
                reference.cost.total_draws, run.cost.total_draws,
                "{strategy:?} with {threads} threads"
            );
            assert_eq!(reference.cost.shared_samples, run.cost.shared_samples);
        }
    }
}

#[test]
fn derivation_is_bit_identical_across_thread_counts() {
    let rel = fig1_relation();
    let config = DeriveConfig {
        learn: LearnConfig {
            support_threshold: 0.01,
            max_itemsets: 1000,
        },
        gibbs: gibbs_config(30, 300),
        ..DeriveConfig::default()
    };
    let reference = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool")
        .install(|| derive_probabilistic_db(&rel, &config));
    for threads in [2, 8] {
        let run = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool")
            .install(|| derive_probabilistic_db(&rel, &config));
        for (a, b) in reference.estimates.iter().zip(&run.estimates) {
            assert_eq!(a.probs, b.probs, "{threads} threads");
        }
        assert_eq!(
            reference.db.alternative_count(),
            run.db.alternative_count(),
            "{threads} threads"
        );
    }
}

#[test]
fn singleton_dag_engine_matches_its_batch_path() {
    // TupleDagWorkload::estimate is defined as the singleton workload; the
    // two entry points must agree exactly.
    let m = model();
    let t = PartialTuple::from_options(&[Some(0), None, None, None]);
    let engine = TupleDagWorkload {
        burn_in: 25,
        samples: 250,
    };
    let mut ctx = InferContext::new(&m, VotingConfig::best_averaged(), 9);
    let single = engine.estimate(&mut ctx, &t);
    let batch = infer_batch(
        &m,
        std::slice::from_ref(&t),
        &engine,
        VotingConfig::best_averaged(),
        9,
    );
    assert_eq!(single.probs, batch.estimates[0].probs);
}
