//! Self-join regression suite.
//!
//! PR 3 rejected every query that scanned one relation twice. Aliased
//! scans ([`Query::scan_as`]) now resolve and classify; because the two
//! scans share their block choices, the planner treats them as a
//! dissociation — `Statistic::Probability` samples a *shared* world per
//! relation, `Statistic::ProbabilityBounds` brackets the answer
//! deterministically — and the oracle adjudicates both. The old
//! rejection error still fires for trees that reuse a scan name.

use mrsl_repro::probdb::testutil::{oracle, oracle_probability};
use mrsl_repro::probdb::{
    Alternative, Block, Catalog, CatalogEngine, EvalPath, PlanClass, Predicate, ProbDb,
    ProbDbError, Query, QueryAnswer, QueryEngineConfig, Statistic,
};
use mrsl_repro::relation::{AttrId, CompleteTuple, Schema, ValueId};
use proptest::prelude::*;

fn alt(values: Vec<u16>, prob: f64) -> Alternative {
    Alternative {
        tuple: CompleteTuple::from_values(values),
        prob,
    }
}

/// `r(k, ok)`: every block sits at one key, present when `ok = yes`.
fn keyed_relation(blocks: &[(u16, f64)], certain: &[u16]) -> ProbDb {
    let schema = Schema::builder()
        .attribute("k", ["k0", "k1", "k2"])
        .attribute("ok", ["no", "yes"])
        .build()
        .unwrap();
    let mut db = ProbDb::new(schema);
    for &k in certain {
        db.push_certain(CompleteTuple::from_values(vec![k, 1]))
            .unwrap();
    }
    for (i, &(k, p)) in blocks.iter().enumerate() {
        db.push_block(Block::new(i, vec![alt(vec![k, 0], 1.0 - p), alt(vec![k, 1], p)]).unwrap())
            .unwrap();
    }
    db
}

fn ok() -> Predicate {
    Predicate::eq(AttrId(1), ValueId(1))
}

/// `σ[ok] r1 ⋈ σ[ok] r2` on the key — the aliased self-join PR 3 refused.
fn self_join() -> Query {
    Query::scan_as("r", "r1").filter(ok()).join_on(
        Query::scan_as("r", "r2").filter(ok()),
        [(AttrId(0), AttrId(0))],
    )
}

fn catalog(blocks: &[(u16, f64)], certain: &[u16]) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.add("r", keyed_relation(blocks, certain)).unwrap();
    catalog
}

#[test]
fn aliased_self_join_resolves_classifies_and_brackets_the_oracle() {
    let catalog = catalog(&[(0, 0.6), (1, 0.4), (2, 0.8)], &[]);
    let query = self_join();
    let engine = CatalogEngine::with_config(
        &catalog,
        QueryEngineConfig {
            mc_samples: 30_000,
            bounds_tolerance: 1.0,
            ..QueryEngineConfig::default()
        },
    );

    // Classification: dissociable, never the independent-product plan.
    let (path, plan) = engine.plan(&query, Statistic::Probability).unwrap();
    assert_eq!(path, EvalPath::MonteCarlo);
    assert_eq!(plan, PlanClass::Dissociable);

    let brute = oracle_probability(&catalog, &query).unwrap();
    // For this query the self-join collapses logically to the scan, so
    // the oracle must agree with P(∃ live row).
    let (scan_p, _) = engine.probability(&Query::scan("r").filter(ok())).unwrap();
    assert!((brute - scan_p).abs() < 1e-12, "{brute} vs {scan_p}");

    // The sampled probability agrees with the oracle.
    let (answer, report) = engine.evaluate(&query, Statistic::Probability).unwrap();
    assert_eq!(report.plan, PlanClass::Dissociable);
    let QueryAnswer::Probability { p, std_error } = answer else {
        panic!("probability expected");
    };
    let se = std_error.expect("MC std error").max(1e-9);
    assert!((p - brute).abs() < 4.0 * se + 0.01, "{p} vs {brute}");

    // The deterministic bracket contains the oracle value; the upper
    // bound is tight here (the dissociated conjunction reproduces the
    // scan probability).
    let (bounds, report) = engine.probability_bounds(&query).unwrap();
    assert_eq!(report.path, EvalPath::ExactColumnar);
    assert_eq!(report.plan, PlanClass::Dissociable);
    assert_eq!(report.mc_samples, 0);
    assert!(
        bounds.lower - 1e-12 <= brute && brute <= bounds.upper + 1e-12,
        "bracket [{}, {}] misses {brute}",
        bounds.lower,
        bounds.upper
    );
    assert!((bounds.upper - brute).abs() < 1e-9, "upper bound not tight");
    assert!(
        report.dissociated.iter().any(|d| d.contains("r1")),
        "aliases not named: {:?}",
        report.dissociated
    );

    // Expected counts cannot use the independent mass-table join either:
    // they sample, and agree with the oracle.
    let (answer, report) = engine.evaluate(&query, Statistic::ExpectedCount).unwrap();
    assert_eq!(report.path, EvalPath::MonteCarlo);
    assert_eq!(report.plan, PlanClass::Dissociable);
    let QueryAnswer::Count { mean, std_error } = answer else {
        panic!("count expected");
    };
    let brute_e = oracle(&catalog, &query, 100_000).unwrap().expected_count;
    let se = std_error.expect("MC std error").max(1e-9);
    assert!(
        (mean - brute_e).abs() < 4.0 * se + 0.02,
        "{mean} vs {brute_e}"
    );
}

#[test]
fn certain_rows_survive_aliasing() {
    // A certain tuple joins with itself: probability 1, exactly.
    let catalog = catalog(&[(1, 0.2)], &[0]);
    let engine = CatalogEngine::new(&catalog);
    let brute = oracle_probability(&catalog, &self_join()).unwrap();
    assert!((brute - 1.0).abs() < 1e-12);
    let (bounds, _) = engine.probability_bounds(&self_join()).unwrap();
    assert!((bounds.lower - 1.0).abs() < 1e-12);
    assert!((bounds.upper - 1.0).abs() < 1e-12);
}

#[test]
fn chain_through_two_aliases_brackets_the_oracle() {
    // R(x), S(x,y), R(y): a self-join *and* a non-hierarchical shape —
    // both dissociation mechanisms compose.
    let mut cat = catalog(&[(0, 0.6), (1, 0.4), (2, 0.8)], &[]);
    let s_schema = Schema::builder()
        .attribute("k1", ["k0", "k1", "k2"])
        .attribute("k2", ["k0", "k1", "k2"])
        .attribute("ok", ["no", "yes"])
        .build()
        .unwrap();
    let mut s = ProbDb::new(s_schema);
    for (i, &(a, b, p)) in [(0u16, 1u16, 0.7), (1, 2, 0.5), (2, 0, 0.3)]
        .iter()
        .enumerate()
    {
        s.push_block(
            Block::new(i, vec![alt(vec![a, b, 0], 1.0 - p), alt(vec![a, b, 1], p)]).unwrap(),
        )
        .unwrap();
    }
    cat.add("s", s).unwrap();
    let sok = Predicate::eq(AttrId(2), ValueId(1));
    let query = Query::scan_as("r", "r1")
        .filter(ok())
        .join_on(Query::scan("s").filter(sok), [(AttrId(0), AttrId(0))])
        .join_on_rel(
            "s",
            Query::scan_as("r", "r2").filter(ok()),
            [(AttrId(1), AttrId(0))],
        );
    let engine = CatalogEngine::with_config(
        &cat,
        QueryEngineConfig {
            bounds_tolerance: 1.0,
            ..QueryEngineConfig::default()
        },
    );
    let (_, plan) = engine.plan(&query, Statistic::ProbabilityBounds).unwrap();
    assert_eq!(plan, PlanClass::Dissociable);
    let (bounds, report) = engine.probability_bounds(&query).unwrap();
    assert_eq!(report.mc_samples, 0);
    let brute = oracle_probability(&cat, &query).unwrap();
    assert!(
        bounds.lower - 1e-12 <= brute && brute <= bounds.upper + 1e-12,
        "bracket [{}, {}] misses {brute} ({:?})",
        bounds.lower,
        bounds.upper,
        report.dissociated
    );
}

#[test]
fn aliases_with_different_selections_fall_back_to_sampling() {
    // σ[k=0](r1) ⋈ σ[ok](r2): different live sets per alias — the shared
    // blocks cannot dissociate, so bounds degrade to the sampled trivial
    // bracket, which still agrees with the oracle.
    let catalog = catalog(&[(0, 0.6), (1, 0.4)], &[]);
    let query = Query::scan_as("r", "r1")
        .filter(Predicate::eq(AttrId(0), ValueId(0)))
        .join_on(
            Query::scan_as("r", "r2").filter(ok()),
            [(AttrId(0), AttrId(0))],
        );
    let engine = CatalogEngine::with_config(
        &catalog,
        QueryEngineConfig {
            mc_samples: 30_000,
            ..QueryEngineConfig::default()
        },
    );
    let (path, _) = engine.plan(&query, Statistic::ProbabilityBounds).unwrap();
    assert_eq!(path, EvalPath::MonteCarlo);
    let (bounds, report) = engine.probability_bounds(&query).unwrap();
    assert_eq!((bounds.lower, bounds.upper), (0.0, 1.0));
    let reason = match report.decomposition {
        Some(mrsl_repro::probdb::SafePlan::Unsafe { ref reason }) => reason.clone(),
        other => panic!("expected unsafe decomposition, got {other:?}"),
    };
    assert!(reason.contains("alias"), "{reason}");
    let est = bounds.estimate.expect("sampled estimate");
    let brute = oracle_probability(&catalog, &query).unwrap();
    assert!((est - brute).abs() < 0.02, "{est} vs {brute}");
}

#[test]
fn unaliased_self_joins_still_raise_the_old_error() {
    let catalog = catalog(&[(0, 0.5)], &[]);
    let engine = CatalogEngine::new(&catalog);
    // The original rejection: the same relation scanned twice by name.
    let dup = Query::scan("r").join_on("r", [(AttrId(0), AttrId(0))]);
    for stat in [
        Statistic::Probability,
        Statistic::ProbabilityBounds,
        Statistic::ExpectedCount,
    ] {
        let e = engine.evaluate(&dup, stat);
        assert!(
            matches!(e, Err(ProbDbError::SelfJoin(ref n)) if n == "r"),
            "{stat:?}: {e:?}"
        );
    }
    // Two scans under one alias are just as unresolvable.
    let dup_alias =
        Query::scan_as("r", "x").join_on(Query::scan_as("r", "x"), [(AttrId(0), AttrId(0))]);
    let e = engine.probability(&dup_alias);
    assert!(matches!(e, Err(ProbDbError::SelfJoin(ref n)) if n == "x"));
    // The oracle raises the identical error, so error paths share it too.
    let e = oracle_probability(&catalog, &dup);
    assert!(matches!(e, Err(ProbDbError::SelfJoin(ref n)) if n == "r"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random keyed relations: the aliased self-join's bracket always
    /// contains the oracle probability, and sampling agrees with it.
    #[test]
    fn random_self_joins_bracket_and_sample_to_the_oracle(
        (blocks, certain, seed) in (
            prop::collection::vec((0u16..3, 5u32..95), 1..5),
            prop::collection::vec(0u16..3, 0..2),
            0u64..1_000,
        )
    ) {
        let blocks: Vec<(u16, f64)> =
            blocks.into_iter().map(|(k, w)| (k, w as f64 / 100.0)).collect();
        let catalog = catalog(&blocks, &certain);
        let query = self_join();
        let brute = oracle_probability(&catalog, &query).expect("oracle");
        let engine = CatalogEngine::with_config(
            &catalog,
            QueryEngineConfig {
                mc_samples: 4_000,
                mc_seed: seed,
                bounds_tolerance: 1.0,
                ..QueryEngineConfig::default()
            },
        );
        let (bounds, _) = engine.probability_bounds(&query).expect("bounds");
        prop_assert!(
            bounds.lower - 1e-12 <= brute && brute <= bounds.upper + 1e-12,
            "bracket [{}, {}] misses {}", bounds.lower, bounds.upper, brute
        );
        let (p, report) = engine.probability(&query).expect("mc");
        prop_assert_eq!(report.path, EvalPath::MonteCarlo);
        prop_assert!((p - brute).abs() < 0.07, "{} vs {}", p, brute);
    }
}
