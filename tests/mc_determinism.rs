//! Determinism of the Monte-Carlo joint-world sampler and the
//! bracket-gated bounds refinement: with a fixed seed, answers are
//! bit-identical across repeated runs and across rayon thread-pool sizes
//! (the sampler is deliberately sequential in its RNG consumption, so the
//! ambient parallelism level must not leak into the draws).

use mrsl_repro::probdb::{
    Alternative, Block, Catalog, CatalogEngine, EvalPath, Predicate, ProbDb, Query, QueryAnswer,
    QueryEngineConfig, Statistic,
};
use mrsl_repro::relation::{AttrId, CompleteTuple, Schema, ValueId};

fn alt(values: Vec<u16>, prob: f64) -> Alternative {
    Alternative {
        tuple: CompleteTuple::from_values(values),
        prob,
    }
}

/// A chain catalog whose query shape exercises both the plain MC route
/// and the hybrid bounds refinement.
fn fixture() -> (Catalog, Query) {
    let one = |n: &str| {
        Schema::builder()
            .attribute(n, ["v0", "v1", "v2"])
            .attribute("ok", ["no", "yes"])
            .build()
            .unwrap()
    };
    let two = Schema::builder()
        .attribute("x", ["v0", "v1", "v2"])
        .attribute("y", ["v0", "v1", "v2"])
        .attribute("ok", ["no", "yes"])
        .build()
        .unwrap();
    let pair = |k: u16, p: f64| vec![alt(vec![k, 0], 1.0 - p), alt(vec![k, 1], p)];
    let mut r = ProbDb::new(one("x"));
    for (i, (k, p)) in [(0u16, 0.6), (1, 0.4), (2, 0.7)].into_iter().enumerate() {
        r.push_block(Block::new(i, pair(k, p)).unwrap()).unwrap();
    }
    let mut s = ProbDb::new(two);
    for (i, (x, y, p)) in [(0u16, 1u16, 0.5), (1, 2, 0.8), (2, 0, 0.3)]
        .into_iter()
        .enumerate()
    {
        s.push_block(
            Block::new(i, vec![alt(vec![x, y, 0], 1.0 - p), alt(vec![x, y, 1], p)]).unwrap(),
        )
        .unwrap();
    }
    let mut t = ProbDb::new(one("y"));
    for (i, (k, p)) in [(0u16, 0.2), (1, 0.9), (2, 0.5)].into_iter().enumerate() {
        t.push_block(Block::new(i, pair(k, p)).unwrap()).unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.add("r", r).unwrap();
    catalog.add("s", s).unwrap();
    catalog.add("t", t).unwrap();
    let ok2 = Predicate::eq(AttrId(1), ValueId(1));
    let ok3 = Predicate::eq(AttrId(2), ValueId(1));
    let query = Query::scan("r")
        .filter(ok2.clone())
        .join_on(Query::scan("s").filter(ok3), [(AttrId(0), AttrId(0))])
        .join_on_rel("s", Query::scan("t").filter(ok2), [(AttrId(1), AttrId(0))]);
    (catalog, query)
}

/// `(probability-estimate bits, std-error bits)` of one MC evaluation.
fn mc_bits(catalog: &Catalog, query: &Query, seed: u64) -> (u64, u64) {
    let engine = CatalogEngine::with_config(
        catalog,
        QueryEngineConfig {
            mc_samples: 4_000,
            mc_seed: seed,
            ..QueryEngineConfig::default()
        },
    );
    let (answer, report) = engine.evaluate(query, Statistic::Probability).unwrap();
    assert_eq!(report.path, EvalPath::MonteCarlo);
    let QueryAnswer::Probability { p, std_error } = answer else {
        panic!("probability expected");
    };
    (p.to_bits(), std_error.unwrap().to_bits())
}

/// Bit-patterns of a refined bounds evaluation (lower, upper, estimate).
fn bounds_bits(catalog: &Catalog, query: &Query, seed: u64) -> (u64, u64, u64) {
    let engine = CatalogEngine::with_config(
        catalog,
        QueryEngineConfig {
            mc_samples: 4_000,
            mc_seed: seed,
            bounds_tolerance: 0.0, // always refine
            ..QueryEngineConfig::default()
        },
    );
    let (bounds, report) = engine.probability_bounds(query).unwrap();
    assert_eq!(report.path, EvalPath::Hybrid);
    (
        bounds.lower.to_bits(),
        bounds.upper.to_bits(),
        bounds.estimate.unwrap().to_bits(),
    )
}

#[test]
fn fixed_seed_is_bit_identical_across_runs() {
    let (catalog, query) = fixture();
    let first = mc_bits(&catalog, &query, 0xD15EA5E);
    for _ in 0..3 {
        assert_eq!(mc_bits(&catalog, &query, 0xD15EA5E), first);
    }
    let bounds = bounds_bits(&catalog, &query, 0xD15EA5E);
    for _ in 0..3 {
        assert_eq!(bounds_bits(&catalog, &query, 0xD15EA5E), bounds);
    }
    // Different seeds genuinely change the draws.
    assert_ne!(mc_bits(&catalog, &query, 0xBEEF), first);
}

#[test]
fn answers_are_bit_identical_across_thread_counts() {
    let (catalog, query) = fixture();
    let baseline_mc = mc_bits(&catalog, &query, 42);
    let baseline_bounds = bounds_bits(&catalog, &query, 42);
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let (mc, bounds) = pool.install(|| {
            (
                mc_bits(&catalog, &query, 42),
                bounds_bits(&catalog, &query, 42),
            )
        });
        assert_eq!(mc, baseline_mc, "{threads} threads");
        assert_eq!(bounds, baseline_bounds, "{threads} threads");
    }
}

#[test]
fn deterministic_bounds_ignore_the_seed_entirely() {
    let (catalog, query) = fixture();
    let engine = |seed| {
        CatalogEngine::with_config(
            &catalog,
            QueryEngineConfig {
                mc_seed: seed,
                bounds_tolerance: 1.0, // never refine
                ..QueryEngineConfig::default()
            },
        )
    };
    let a = engine(1).probability_bounds(&query).unwrap().0;
    let b = engine(2).probability_bounds(&query).unwrap().0;
    assert_eq!(a.lower.to_bits(), b.lower.to_bits());
    assert_eq!(a.upper.to_bits(), b.upper.to_bits());
    assert!(a.estimate.is_none() && b.estimate.is_none());
}
