//! Dissociation bounds vs the brute-force oracle.
//!
//! The acceptance bar for the bounds evaluator: on the classic unsafe
//! chain `R(x), S(x,y), T(y)` (and on random small catalogs of that
//! shape) the dissociation bracket must always contain the exact
//! joint-world probability, collapse to it on hierarchical queries, stay
//! deterministic (no sampling) when within tolerance, and name the
//! dissociated variable in the report.

use mrsl_repro::probdb::testutil::{oracle, oracle_probability};
use mrsl_repro::probdb::{
    Alternative, Block, Catalog, CatalogEngine, EvalPath, PlanClass, Predicate, ProbDb,
    ProbabilityBounds, Query, QueryEngineConfig, Statistic,
};
use mrsl_repro::relation::{AttrId, CompleteTuple, Schema, ValueId};
use proptest::prelude::*;
use std::sync::Arc;

fn alt(values: Vec<u16>, prob: f64) -> Alternative {
    Alternative {
        tuple: CompleteTuple::from_values(values),
        prob,
    }
}

/// `ok`-gated schema: the key attributes plus a trailing `ok` flag whose
/// selection decides whether the tuple is "present" — so every block
/// keeps a unique join key among its selected alternatives.
fn gated_schema(keys: &[&str], card: usize) -> Arc<Schema> {
    let mut b = Schema::builder();
    for k in keys {
        b = b.attribute(*k, (0..card).map(|v| format!("v{v}")));
    }
    b.attribute("ok", ["no", "yes"]).build().unwrap()
}

/// A block at fixed key values, present with probability `p`.
fn gated_block(key: usize, values: &[u16], p: f64) -> Block {
    let mut absent = values.to_vec();
    absent.push(0);
    let mut present = values.to_vec();
    present.push(1);
    Block::new(key, vec![alt(absent, 1.0 - p), alt(present, p)]).unwrap()
}

fn ok_pred(arity: usize) -> Predicate {
    Predicate::eq(AttrId(arity as u16 - 1), ValueId(1))
}

/// The chain query `σ[ok] R(x) ⋈ σ[ok] S(x,y) ⋈ σ[ok] T(y)`.
fn chain_query() -> Query {
    Query::scan("r")
        .filter(ok_pred(2))
        .join_on(
            Query::scan("s").filter(ok_pred(3)),
            [(AttrId(0), AttrId(0))],
        )
        .join_on_rel(
            "s",
            Query::scan("t").filter(ok_pred(2)),
            [(AttrId(1), AttrId(0))],
        )
}

/// A deterministic chain catalog from per-block presence probabilities.
fn chain_catalog(r: &[(u16, f64)], s: &[((u16, u16), f64)], t: &[(u16, f64)]) -> Catalog {
    let card = 3;
    let mut rdb = ProbDb::new(gated_schema(&["x"], card));
    for (i, &(x, p)) in r.iter().enumerate() {
        rdb.push_block(gated_block(i, &[x], p)).unwrap();
    }
    let mut sdb = ProbDb::new(gated_schema(&["x", "y"], card));
    for (i, &((x, y), p)) in s.iter().enumerate() {
        sdb.push_block(gated_block(i, &[x, y], p)).unwrap();
    }
    let mut tdb = ProbDb::new(gated_schema(&["y"], card));
    for (i, &(y, p)) in t.iter().enumerate() {
        tdb.push_block(gated_block(i, &[y], p)).unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.add("r", rdb).unwrap();
    catalog.add("s", sdb).unwrap();
    catalog.add("t", tdb).unwrap();
    catalog
}

/// Acceptance: the non-hierarchical chain gets a deterministic bracket
/// around the oracle probability, without sampling, and the report names
/// the dissociated variable.
#[test]
fn chain_bounds_bracket_oracle_without_sampling() {
    let catalog = chain_catalog(
        &[(0, 0.6), (1, 0.5), (2, 0.9)],
        &[((0, 1), 0.7), ((1, 0), 0.4), ((2, 2), 0.8), ((0, 0), 0.3)],
        &[(0, 0.8), (1, 0.3), (2, 0.5)],
    );
    let query = chain_query();
    // Never refine: the bracket must be fully deterministic.
    let engine = CatalogEngine::with_config(
        &catalog,
        QueryEngineConfig {
            bounds_tolerance: 1.0,
            ..QueryEngineConfig::default()
        },
    );
    let (path, plan) = engine.plan(&query, Statistic::ProbabilityBounds).unwrap();
    assert_eq!(path, EvalPath::ExactColumnar);
    assert_eq!(plan, PlanClass::Dissociable);
    let (bounds, report) = engine.probability_bounds(&query).unwrap();
    assert_eq!(report.path, EvalPath::ExactColumnar);
    assert_eq!(report.plan, PlanClass::Dissociable);
    assert_eq!(report.mc_samples, 0, "deterministic bounds must not sample");
    assert!(bounds.estimate.is_none());

    let brute = oracle_probability(&catalog, &query).unwrap();
    assert!(
        bounds.lower - 1e-12 <= brute && brute <= bounds.upper + 1e-12,
        "bracket [{}, {}] misses oracle {brute}",
        bounds.lower,
        bounds.upper
    );
    assert!(bounds.width() < 0.35, "bracket uselessly wide: {bounds:?}");

    // The report names what was dissociated, and the plan renders the
    // replicated scan.
    assert!(
        !report.dissociated.is_empty(),
        "dissociated variable missing from the report"
    );
    let plan = report.decomposition.expect("dissociated safe plan");
    assert!(plan.render().contains("copy"), "{}", plan.render());

    // The plain probability statistic still samples this shape.
    let (path, plan) = engine.plan(&query, Statistic::Probability).unwrap();
    assert_eq!(path, EvalPath::MonteCarlo);
    assert_eq!(plan, PlanClass::NonHierarchical);
}

/// Bracket-gated refinement: with a zero tolerance the same query samples
/// and reports the hybrid path, with the estimate clamped into the
/// bracket.
#[test]
fn wide_brackets_refine_with_monte_carlo() {
    let catalog = chain_catalog(
        &[(0, 0.6), (1, 0.5)],
        &[((0, 1), 0.7), ((1, 0), 0.4), ((1, 1), 0.5)],
        &[(0, 0.8), (1, 0.3)],
    );
    let query = chain_query();
    let engine = CatalogEngine::with_config(
        &catalog,
        QueryEngineConfig {
            bounds_tolerance: 0.0,
            mc_samples: 20_000,
            ..QueryEngineConfig::default()
        },
    );
    let (bounds, report) = engine.probability_bounds(&query).unwrap();
    assert_eq!(report.path, EvalPath::Hybrid);
    assert_eq!(report.mc_samples, 20_000);
    let estimate = bounds.estimate.expect("refined estimate");
    assert!(bounds.contains(estimate), "estimate outside the bracket");
    assert!(bounds.std_error.is_some());
    let brute = oracle_probability(&catalog, &query).unwrap();
    assert!(bounds.contains(brute), "bracket misses the oracle");
    assert!((estimate - brute).abs() < 0.02, "{estimate} vs {brute}");
    assert_eq!(bounds.best(), estimate);
}

/// Forced Monte Carlo degrades bounds to the trivial bracket + estimate.
#[test]
fn forced_monte_carlo_answers_trivial_bracket() {
    let catalog = chain_catalog(&[(0, 0.6)], &[((0, 1), 0.7)], &[(1, 0.3)]);
    let engine = CatalogEngine::with_config(
        &catalog,
        QueryEngineConfig {
            force_monte_carlo: true,
            mc_samples: 5_000,
            ..QueryEngineConfig::default()
        },
    );
    let (bounds, report) = engine.probability_bounds(&chain_query()).unwrap();
    assert_eq!(report.plan, PlanClass::ForcedMonteCarlo);
    assert_eq!((bounds.lower, bounds.upper), (0.0, 1.0));
    assert!(bounds.estimate.is_some());
}

/// Random chain catalogs: `lower ≤ P_oracle ≤ upper` always, and the
/// bracket never sampled.
fn arb_chain() -> BoxedStrategy<(Catalog, Query)> {
    let prob = || (5u32..95).prop_map(|w| w as f64 / 100.0);
    let rblocks = prop::collection::vec((0u16..3, prob()), 1..4);
    let sblocks = prop::collection::vec(((0u16..3, 0u16..3), prob()), 1..5);
    let tblocks = prop::collection::vec((0u16..3, prob()), 1..4);
    (rblocks, sblocks, tblocks)
        .prop_map(|(r, s, t)| (chain_catalog(&r, &s, &t), chain_query()))
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On random small chain catalogs the dissociation bracket always
    /// contains the brute-force probability, and the upper bound side is
    /// reached without sampling.
    #[test]
    fn bounds_always_bracket_the_oracle((catalog, query) in arb_chain()) {
        let engine = CatalogEngine::with_config(
            &catalog,
            QueryEngineConfig { bounds_tolerance: 1.0, ..QueryEngineConfig::default() },
        );
        let (bounds, report) = engine.probability_bounds(&query).expect("bounds");
        prop_assert_eq!(report.mc_samples, 0);
        prop_assert!(bounds.lower >= -1e-12 && bounds.upper <= 1.0 + 1e-12);
        let brute = oracle_probability(&catalog, &query).expect("oracle");
        prop_assert!(
            bounds.lower - 1e-12 <= brute && brute <= bounds.upper + 1e-12,
            "bracket [{}, {}] misses oracle {} (report {:?})",
            bounds.lower, bounds.upper, brute, report.dissociated
        );
    }

    /// On hierarchical (safe) queries the bracket collapses to the exact
    /// probability — which equals the oracle's to 1e-12.
    #[test]
    fn bounds_collapse_to_exact_on_hierarchical_queries(
        (catalog, _) in arb_chain()
    ) {
        // Drop T: σ[ok] R(x) ⋈ σ[ok] S(x,y) is hierarchical.
        let query = Query::scan("r")
            .filter(ok_pred(2))
            .join_on(Query::scan("s").filter(ok_pred(3)), [(AttrId(0), AttrId(0))]);
        let engine = CatalogEngine::new(&catalog);
        let (path, plan) = engine.plan(&query, Statistic::ProbabilityBounds).expect("plan");
        prop_assert_eq!(path, EvalPath::ExactColumnar);
        prop_assert_eq!(plan, PlanClass::Liftable);
        let (bounds, report) = engine.probability_bounds(&query).expect("bounds");
        prop_assert_eq!(report.mc_samples, 0);
        prop_assert!(bounds.is_exact(0.0), "safe bracket not collapsed: {:?}", bounds);
        let brute = oracle_probability(&catalog, &query).expect("oracle");
        prop_assert!((bounds.lower - brute).abs() < 1e-12, "{} vs {}", bounds.lower, brute);
        // And the point statistic agrees with the bracket bit for bit.
        let (p, _) = engine.probability(&query).expect("probability");
        prop_assert_eq!(p.to_bits(), bounds.lower.to_bits());
    }

    /// The oracle itself is consistent with the exact engine on every
    /// statistic it reports (probability, expected count, distribution)
    /// for safe queries.
    #[test]
    fn oracle_matches_exact_engine_on_safe_queries((catalog, _) in arb_chain()) {
        let query = Query::scan("s").filter(ok_pred(3));
        let engine = CatalogEngine::new(&catalog);
        let answer = oracle(&catalog, &query, 1_000_000).expect("oracle");
        let (p, _) = engine.probability(&query).expect("p");
        let (e, _) = engine.expected_count(&query).expect("e");
        let (d, _) = engine.count_distribution(&query).expect("d");
        prop_assert!((p - answer.probability).abs() < 1e-12);
        prop_assert!((e - answer.expected_count).abs() < 1e-12);
        for (k, &exact) in d.iter().enumerate() {
            let brute = answer.count_distribution.get(k).copied().unwrap_or(0.0);
            prop_assert!((exact - brute).abs() < 1e-12, "k={}", k);
        }
    }
}

/// The bounds API surface: `ProbabilityBounds` helpers behave.
#[test]
fn probability_bounds_helpers() {
    let b = ProbabilityBounds::bracket(0.2, 0.6);
    assert!((b.width() - 0.4).abs() < 1e-15);
    assert!((b.midpoint() - 0.4).abs() < 1e-15);
    assert!(!b.is_exact(1e-9));
    assert!(b.contains(0.2) && b.contains(0.6) && !b.contains(0.61));
    assert_eq!(b.best(), b.midpoint());
    let e = ProbabilityBounds::exact(0.5);
    assert!(e.is_exact(0.0));
    assert_eq!(e.best(), 0.5);
}
