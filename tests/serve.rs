//! Serving-layer suite: snapshot isolation, generation lifecycle, and
//! bit-identity of the served path.
//!
//! The server adds scheduling — a queue, a pool, snapshot pinning — but
//! must add **no numerics**: an answer served through [`ProbDbServer`]
//! has to reproduce, bit for bit, what a direct [`CatalogEngine`] over
//! the same catalog generation produces (which the sharded-VM suite in
//! turn pins to the reference interpreter). Publication must be atomic:
//! readers never observe a torn catalog, warm register memos patched
//! across a generation swap answer exactly like a cold bind, and a
//! writer that dies mid-build changes nothing.

use mrsl_repro::probdb::serve::{ProbDbServer, ServeConfig, ServerHandle};
use mrsl_repro::probdb::{
    Alternative, Block, Catalog, CatalogEngine, PlanRoute, Predicate, ProbDb, ProbDbError, Query,
    QueryAnswer, QueryEngineConfig, Statistic,
};
use mrsl_repro::relation::{AttrId, CompleteTuple, Schema, ValueId};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn alt(values: Vec<u16>, prob: f64) -> Alternative {
    Alternative {
        tuple: CompleteTuple::from_values(values),
        prob,
    }
}

/// Interpreter reference: compiled plans off, brackets never refined.
fn interp_config() -> QueryEngineConfig {
    QueryEngineConfig {
        compile_plans: false,
        bounds_tolerance: 1.0,
        ..QueryEngineConfig::default()
    }
}

/// VM configuration at an explicit shard count (`0` = auto).
fn vm_config(shards: usize) -> QueryEngineConfig {
    QueryEngineConfig {
        bounds_tolerance: 1.0,
        shards,
        ..QueryEngineConfig::default()
    }
}

fn serve_config(workers: usize, shards: usize) -> ServeConfig {
    ServeConfig {
        workers,
        engine: vm_config(shards),
        ..ServeConfig::default()
    }
}

/// Overload-suite configuration: every evaluation forced onto the Monte
/// Carlo path with an explicit sample count, so "how long a request
/// holds a worker" is a dial the tests control.
fn overload_config(workers: usize, max_queue_depth: usize, mc_samples: usize) -> ServeConfig {
    ServeConfig {
        workers,
        max_queue_depth,
        engine: QueryEngineConfig {
            force_monte_carlo: true,
            mc_samples,
            bounds_tolerance: 1.0,
            ..QueryEngineConfig::default()
        },
        ..ServeConfig::default()
    }
}

/// Polls `done` every few milliseconds until it holds or `patience`
/// runs out; returns the final observation.
fn eventually(patience: Duration, done: impl Fn() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < patience {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    done()
}

/// Raw bit payload of an answer, so comparisons are exact by
/// construction.
fn answer_bits(answer: &QueryAnswer) -> Vec<u64> {
    match answer {
        QueryAnswer::Probability { p, std_error } => {
            let mut v = vec![p.to_bits()];
            v.extend(std_error.map(f64::to_bits));
            v
        }
        QueryAnswer::Bounds(b) => {
            let mut v = vec![b.lower.to_bits(), b.upper.to_bits()];
            v.extend(b.estimate.map(f64::to_bits));
            v.extend(b.std_error.map(f64::to_bits));
            v
        }
        QueryAnswer::Count { mean, std_error } => {
            let mut v = vec![mean.to_bits()];
            v.extend(std_error.map(f64::to_bits));
            v
        }
        other => panic!("unexpected answer shape: {other:?}"),
    }
}

fn direct_bits(engine: &CatalogEngine, q: &Query, stat: Statistic) -> Vec<u64> {
    let (answer, _) = engine.evaluate(q, stat).expect("direct evaluation");
    answer_bits(&answer)
}

fn served_bits(handle: &ServerHandle, q: &Query, stat: Statistic) -> (Vec<u64>, PlanRoute) {
    let served = handle.evaluate(q, stat).expect("served evaluation");
    (answer_bits(&served.answer), served.report.route)
}

const STATS: [Statistic; 3] = [
    Statistic::Probability,
    Statistic::ProbabilityBounds,
    Statistic::ExpectedCount,
];

/// `r(k, ok)`: every block sits at one key, present when `ok = yes`.
fn keyed_relation(blocks: &[(u16, f64)], certain: &[u16]) -> ProbDb {
    let schema = Schema::builder()
        .attribute("k", ["k0", "k1", "k2"])
        .attribute("ok", ["no", "yes"])
        .build()
        .unwrap();
    let mut db = ProbDb::new(schema);
    for &k in certain {
        db.push_certain(CompleteTuple::from_values(vec![k, 1]))
            .unwrap();
    }
    for (i, &(k, p)) in blocks.iter().enumerate() {
        db.push_block(Block::new(i, vec![alt(vec![k, 0], 1.0 - p), alt(vec![k, 1], p)]).unwrap())
            .unwrap();
    }
    db
}

fn ok() -> Predicate {
    Predicate::eq(AttrId(1), ValueId(1))
}

fn join_query() -> Query {
    Query::scan("left")
        .filter(ok())
        .join_on(Query::scan("right").filter(ok()), [(AttrId(0), AttrId(0))])
}

fn join_catalog(lb: &[(u16, f64)], rb: &[(u16, f64)]) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.add("left", keyed_relation(lb, &[1])).unwrap();
    catalog.add("right", keyed_relation(rb, &[0])).unwrap();
    catalog
}

/// The unsafe chain `R(x), S(x,y), T(y)` — the dissociable fixture whose
/// bounds programs exercise replicated roots and both mass transforms.
fn chain_catalog(rp: [f64; 2], sp: [f64; 3], tp: [f64; 2]) -> Catalog {
    let one = |n: &str| {
        Schema::builder()
            .attribute(n, ["v0", "v1"])
            .attribute("ok", ["no", "yes"])
            .build()
            .unwrap()
    };
    let two = Schema::builder()
        .attribute("x", ["v0", "v1"])
        .attribute("y", ["v0", "v1"])
        .attribute("ok", ["no", "yes"])
        .build()
        .unwrap();
    let pair = |k: u16, p: f64| vec![alt(vec![k, 0], 1.0 - p), alt(vec![k, 1], p)];
    let spair = |x: u16, y: u16, p: f64| vec![alt(vec![x, y, 0], 1.0 - p), alt(vec![x, y, 1], p)];
    let mut r = ProbDb::new(one("x"));
    r.push_block(Block::new(0, pair(0, rp[0])).unwrap())
        .unwrap();
    r.push_block(Block::new(1, pair(1, rp[1])).unwrap())
        .unwrap();
    let mut s = ProbDb::new(two);
    s.push_block(Block::new(0, spair(0, 1, sp[0])).unwrap())
        .unwrap();
    s.push_block(Block::new(1, spair(1, 0, sp[1])).unwrap())
        .unwrap();
    s.push_block(Block::new(2, spair(0, 0, sp[2])).unwrap())
        .unwrap();
    let mut t = ProbDb::new(one("y"));
    t.push_block(Block::new(0, pair(0, tp[0])).unwrap())
        .unwrap();
    t.push_block(Block::new(1, pair(1, tp[1])).unwrap())
        .unwrap();
    let mut catalog = Catalog::new();
    catalog.add("r", r).unwrap();
    catalog.add("s", s).unwrap();
    catalog.add("t", t).unwrap();
    catalog
}

fn chain_query() -> Query {
    let ok3 = Predicate::eq(AttrId(2), ValueId(1));
    Query::scan("r")
        .filter(ok())
        .join_on(Query::scan("s").filter(ok3), [(AttrId(0), AttrId(0))])
        .join_on_rel("s", Query::scan("t").filter(ok()), [(AttrId(1), AttrId(0))])
}

/// Asserts the served path reproduces the direct interpreter bits for
/// every statistic, cold and warm, across pool sizes and shard
/// configurations (including auto).
fn assert_served_matches_direct(catalog: &Catalog, q: &Query) {
    let interp = CatalogEngine::with_config(catalog, interp_config());
    let reference: Vec<Vec<u64>> = STATS
        .iter()
        .map(|&stat| direct_bits(&interp, q, stat))
        .collect();
    for workers in [1, 4] {
        for shards in [0, 1, 16] {
            let server = ProbDbServer::with_config(catalog.clone(), serve_config(workers, shards));
            let handle = server.handle();
            for (i, &stat) in STATS.iter().enumerate() {
                let (cold, _) = served_bits(&handle, q, stat);
                assert_eq!(
                    reference[i], cold,
                    "served cold diverges on {stat:?} at {workers} workers x {shards} shards"
                );
                let (warm, route) = served_bits(&handle, q, stat);
                assert_eq!(route, PlanRoute::CacheHit, "{stat:?}");
                assert_eq!(
                    reference[i], warm,
                    "served warm diverges on {stat:?} at {workers} workers x {shards} shards"
                );
            }
            server.shutdown();
        }
    }
}

fn arb_prob() -> impl Strategy<Value = f64> {
    (1u32..=19).prop_map(|w| w as f64 / 20.0)
}

fn arb_keyed_blocks() -> impl Strategy<Value = Vec<(u16, f64)>> {
    prop::collection::vec((0u16..3, arb_prob()), 1..6)
}

fn arb_probs2() -> impl Strategy<Value = [f64; 2]> {
    (arb_prob(), arb_prob()).prop_map(|(a, b)| [a, b])
}

fn arb_probs3() -> impl Strategy<Value = [f64; 3]> {
    (arb_prob(), arb_prob(), arb_prob()).prop_map(|(a, b, c)| [a, b, c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Acceptance criterion: the snapshot path equals the direct
    /// `CatalogEngine` path (and therefore the interpreter) bit for bit
    /// on safe hierarchical joins.
    #[test]
    fn served_joins_are_bit_identical(
        (lb, rb) in (arb_keyed_blocks(), arb_keyed_blocks())
    ) {
        let catalog = join_catalog(&lb, &rb);
        assert_served_matches_direct(&catalog, &join_query());
    }

    /// Same for dissociable chains: served bounds brackets reproduce the
    /// interpreter bits exactly.
    #[test]
    fn served_dissociation_brackets_are_bit_identical(
        (rp, sp, tp) in (arb_probs2(), arb_probs3(), arb_probs2())
    ) {
        let catalog = chain_catalog(rp, sp, tp);
        assert_served_matches_direct(&catalog, &chain_query());
    }
}

/// Readers racing a publishing writer always observe a fully consistent
/// generation: the lockstep invariant (both relations grow together)
/// holds in every pinned snapshot, and every served answer matches the
/// generation it is stamped with.
#[test]
fn concurrent_readers_never_see_a_torn_catalog() {
    const PUBLISHES: u64 = 24;
    const READERS: usize = 4;
    let schema = Schema::builder()
        .attribute("k", ["k0", "k1", "k2"])
        .attribute("ok", ["no", "yes"])
        .build()
        .unwrap();
    let mut catalog = Catalog::new();
    for name in ["a", "b"] {
        let mut db = ProbDb::new(schema.clone());
        db.push_certain(CompleteTuple::from_values(vec![0, 1]))
            .unwrap();
        catalog.add(name, db).unwrap();
    }
    let server = ProbDbServer::with_config(catalog, serve_config(READERS, 0));
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..PUBLISHES {
                server.update(|catalog| {
                    // Lockstep: one certain row into *both* relations per
                    // generation. A torn publish would break a == b.
                    for name in ["a", "b"] {
                        catalog
                            .get_mut(name)
                            .unwrap()
                            .push_certain(CompleteTuple::from_values(vec![(i % 3) as u16, 1]))
                            .unwrap();
                    }
                });
            }
        });
        for _ in 0..READERS {
            scope.spawn(|| {
                let handle = server.handle();
                let mut last_generation = 0;
                loop {
                    // Pinned snapshots are internally consistent.
                    let snap = handle.snapshot();
                    let a = snap.catalog().get("a").unwrap().certain().len();
                    let b = snap.catalog().get("b").unwrap().certain().len();
                    assert_eq!(a, b, "torn catalog at generation {}", snap.generation());
                    assert_eq!(a as u64, 1 + snap.generation());
                    // Served answers match the generation they are
                    // stamped with: generation g has 1 + g certain rows.
                    let served = handle
                        .evaluate(&Query::scan("a"), Statistic::ExpectedCount)
                        .unwrap();
                    let QueryAnswer::Count { mean, .. } = served.answer else {
                        panic!("expected a count");
                    };
                    assert_eq!(mean, (1 + served.generation) as f64);
                    // Generations never run backwards for a client.
                    assert!(served.generation >= last_generation);
                    last_generation = served.generation;
                    if served.generation == PUBLISHES {
                        return;
                    }
                }
            });
        }
    });
    assert_eq!(server.stats().publishes, PUBLISHES);
    server.shutdown();
}

/// Warm register memos survive a generation swap: the publish leaves
/// untouched relations shared (same `Arc`, same stamps), the touched
/// relation's memo is *patched* rather than rebuilt, and the warm served
/// answer is bit-identical to a cold bind over the new generation.
#[test]
fn warm_memos_patched_across_generations_match_cold_bind() {
    let catalog = join_catalog(
        &[(0, 0.3), (1, 0.6), (2, 0.8), (0, 0.4)],
        &[(0, 0.5), (2, 0.7)],
    );
    let q = join_query();
    let server = ProbDbServer::with_config(catalog, serve_config(2, 4));
    let handle = server.handle();
    // Cold compile, then a warm hit so the registers are memoized.
    let (_, route) = served_bits(&handle, &q, Statistic::Probability);
    assert_eq!(route, PlanRoute::Compiled);
    let (_, route) = served_bits(&handle, &q, Statistic::Probability);
    assert_eq!(route, PlanRoute::CacheHit);
    let before = server.snapshot();
    let stats_before = server.stats().plan_cache;

    // Publish generation 1: one block upserted into `left` at key 2.
    server.update(|catalog| {
        catalog
            .get_mut("left")
            .unwrap()
            .push_block(Block::new(4, vec![alt(vec![2, 0], 0.45), alt(vec![2, 1], 0.55)]).unwrap())
            .unwrap();
    });
    let after = server.snapshot();
    // COW held: `right` is the same object across generations (stamps
    // included), `left` diverged.
    assert!(Arc::ptr_eq(
        &before.catalog().get_shared("right").unwrap(),
        &after.catalog().get_shared("right").unwrap()
    ));
    assert!(!Arc::ptr_eq(
        &before.catalog().get_shared("left").unwrap(),
        &after.catalog().get_shared("left").unwrap()
    ));

    // The warm serve over generation 1 still hits the cached plan, and
    // patches (not rebuilds) the memoized registers.
    let (warm, route) = served_bits(&handle, &q, Statistic::Probability);
    assert_eq!(route, PlanRoute::CacheHit);
    let stats_after = server.stats().plan_cache;
    assert_eq!(stats_after.invalidations, stats_before.invalidations);
    assert_eq!(
        stats_after.reg_patches - stats_before.reg_patches,
        1,
        "only `left` should be patched"
    );
    assert_eq!(stats_after.reg_rebinds, stats_before.reg_rebinds);

    // Bit-identity: patched-warm == cold bind == interpreter, all over
    // the published generation-1 catalog.
    let generation_1 = after.catalog();
    let cold = direct_bits(
        &CatalogEngine::with_config(generation_1, vm_config(4)),
        &q,
        Statistic::Probability,
    );
    assert_eq!(warm, cold, "patched warm serve diverges from a cold bind");
    let interp = direct_bits(
        &CatalogEngine::with_config(generation_1, interp_config()),
        &q,
        Statistic::Probability,
    );
    assert_eq!(warm, interp);
    server.shutdown();
}

/// A writer that panics mid-build publishes nothing: the served snapshot
/// is untouched, and the server (including its writer lock) keeps
/// working.
#[test]
fn writer_crash_mid_build_leaves_the_published_snapshot_untouched() {
    let catalog = join_catalog(&[(0, 0.3), (1, 0.6)], &[(0, 0.5)]);
    let q = join_query();
    let server = ProbDbServer::with_config(catalog, serve_config(2, 0));
    let handle = server.handle();
    let (reference, _) = served_bits(&handle, &q, Statistic::Probability);
    let rows_before = server
        .snapshot()
        .catalog()
        .get("left")
        .unwrap()
        .certain()
        .len();

    let crash = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        server.update(|catalog| {
            catalog
                .get_mut("left")
                .unwrap()
                .push_certain(CompleteTuple::from_values(vec![0, 1]))
                .unwrap();
            panic!("writer dies mid-build");
        });
    }));
    assert!(crash.is_err());

    // Nothing published, nothing mutated, nothing counted.
    assert_eq!(server.generation(), 0);
    assert_eq!(server.stats().publishes, 0);
    assert_eq!(
        server
            .snapshot()
            .catalog()
            .get("left")
            .unwrap()
            .certain()
            .len(),
        rows_before
    );
    let (bits, _) = served_bits(&handle, &q, Statistic::Probability);
    assert_eq!(bits, reference);
    // The writer lock recovered: the next update publishes generation 1.
    let (generation, ()) = server.update(|_| ());
    assert_eq!(generation, 1);
    server.shutdown();
}

/// Many clients hammering one query shape share the plan cache: every
/// answer is bit-identical, the shape compiles at most once per
/// statistic, and queue accounting returns to zero.
#[test]
fn concurrent_clients_share_the_plan_cache() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 10;
    let catalog = chain_catalog([0.3, 0.7], [0.2, 0.5, 0.8], [0.6, 0.4]);
    let q = chain_query();
    let reference = direct_bits(
        &CatalogEngine::with_config(&catalog, interp_config()),
        &q,
        Statistic::ProbabilityBounds,
    );
    let server = ProbDbServer::with_config(catalog, serve_config(4, 0));
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let handle = server.handle();
            let q = q.clone();
            let reference = reference.clone();
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    let (bits, _) = served_bits(&handle, &q, Statistic::ProbabilityBounds);
                    assert_eq!(bits, reference);
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.queries, (CLIENTS * ROUNDS) as u64);
    assert_eq!(
        stats.exact + stats.monte_carlo + stats.hybrid,
        stats.queries
    );
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.queue_depth, 0);
    // 80 answers, one shape: all but the cold compile are warm hits.
    assert!(
        stats.cache_hits >= (CLIENTS * ROUNDS - CLIENTS) as u64,
        "{stats:?}"
    );
    assert_eq!(stats.plan_cache.len, 1);
    server.shutdown();
}

/// Submissions queued before a shutdown drain; submissions after it fail
/// with the typed error — and pending tickets never hang.
#[test]
fn shutdown_drains_queued_work_then_rejects() {
    let catalog = join_catalog(&[(0, 0.5), (1, 0.5)], &[(0, 0.5), (1, 0.25)]);
    let q = join_query();
    let server = ProbDbServer::with_config(catalog, serve_config(1, 0));
    let handle = server.handle();
    let tickets: Vec<_> = (0..16)
        .map(|_| {
            handle
                .submit(q.clone(), Statistic::Probability)
                .expect("unbounded queue admits")
        })
        .collect();
    server.shutdown();
    for ticket in tickets {
        let served = ticket.wait().expect("queued before shutdown: drains");
        assert!(matches!(served.answer, QueryAnswer::Probability { .. }));
    }
    assert_eq!(
        handle.evaluate(&q, Statistic::Probability).unwrap_err(),
        ProbDbError::ServerUnavailable
    );
    assert_eq!(handle.stats().queue_depth, 0);
}

// ---------------------------------------------------------------------
// Overload & degradation suite: admission control, deadlines, ticket
// abandonment, and request coalescing.
// ---------------------------------------------------------------------

/// Samples that hold a worker for a human-visible stretch in a debug
/// build (roughly a second), so the queue observably backs up.
const SLOW_SAMPLES: usize = 300_000;

/// Submits one slow request and blocks until a worker has picked it up
/// (queue empty again), so the test knows the pool is busy.
fn occupy_worker(handle: &ServerHandle, q: &Query) -> mrsl_repro::probdb::serve::Ticket {
    let blocker = handle
        .submit(q.clone(), Statistic::Probability)
        .expect("blocker admitted");
    assert!(
        eventually(Duration::from_secs(20), || handle.stats().queue_depth == 0),
        "worker never picked the blocker up"
    );
    blocker
}

/// Acceptance criterion: a full queue refuses new work immediately with
/// the typed error — no blocking, no deadlock — and the refusal unwinds
/// the provisional depth count.
#[test]
fn full_queue_rejects_with_overloaded_immediately() {
    let catalog = chain_catalog([0.3, 0.7], [0.2, 0.5, 0.8], [0.6, 0.4]);
    let q = chain_query();
    const BOUND: usize = 2;
    let server = ProbDbServer::with_config(catalog, overload_config(1, BOUND, SLOW_SAMPLES));
    let handle = server.handle();
    let blocker = occupy_worker(&handle, &q);

    // The single worker is busy: fill the queue exactly to the bound.
    let queued: Vec<_> = (0..BOUND)
        .map(|i| {
            handle
                .submit(q.clone(), Statistic::Probability)
                .unwrap_or_else(|e| panic!("submit {i} within the bound: {e}"))
        })
        .collect();
    assert_eq!(handle.stats().queue_depth, BOUND as u64);

    // One past the bound fails fast.
    let start = Instant::now();
    let err = handle
        .submit(q.clone(), Statistic::Probability)
        .unwrap_err();
    assert_eq!(err, ProbDbError::Overloaded);
    assert!(
        start.elapsed() < Duration::from_millis(250),
        "admission refusal must not block: took {:?}",
        start.elapsed()
    );
    let stats = handle.stats();
    assert_eq!(stats.rejected, 1);
    // The bounce unwound its provisional count.
    assert_eq!(stats.queue_depth, BOUND as u64);
    // A rejected submit is not a query: nothing was enqueued or served.
    assert_eq!(stats.queries, 0);

    // Everything actually admitted still answers.
    blocker.wait().expect("blocker answers");
    for ticket in queued {
        ticket.wait().expect("queued within the bound answers");
    }
    server.shutdown();
    assert_eq!(handle.stats().queue_depth, 0);
}

/// `wait_timeout` comes back within the deadline plus scheduling jitter,
/// the abandoned answer is discarded cleanly, and a request whose
/// deadline expires while queued is dropped by the worker unevaluated.
#[test]
fn deadlines_bound_waits_and_expire_queued_work() {
    let catalog = chain_catalog([0.3, 0.7], [0.2, 0.5, 0.8], [0.6, 0.4]);
    let q = chain_query();
    let server = ProbDbServer::with_config(catalog, overload_config(1, 0, SLOW_SAMPLES));
    let handle = server.handle();
    let blocker = occupy_worker(&handle, &q);

    // A request stamped with a deadline far shorter than the blocker's
    // runtime: the client-side wait gives up on time...
    let deadline = Duration::from_millis(100);
    let expired = handle
        .submit_with_deadline(q.clone(), Statistic::Probability, deadline)
        .expect("admitted");
    let start = Instant::now();
    let err = expired.wait_timeout(deadline).unwrap_err();
    let waited = start.elapsed();
    assert_eq!(err, ProbDbError::DeadlineExceeded);
    assert!(waited >= deadline, "woke early: {waited:?}");
    assert!(
        waited < deadline + Duration::from_secs(2),
        "wait_timeout overshot the deadline past scheduling jitter: {waited:?}"
    );

    // ...and a second stamped request, left queued past its deadline
    // with its ticket alive, is dropped by the worker without being
    // evaluated and answers `DeadlineExceeded`.
    let doomed = handle
        .submit_with_deadline(q.clone(), Statistic::Probability, deadline)
        .expect("admitted");
    assert_eq!(doomed.wait().unwrap_err(), ProbDbError::DeadlineExceeded);
    let stats = handle.stats();
    assert_eq!(stats.expired, 1, "{stats:?}");
    // The first stamped request was abandoned by its timed-out wait, so
    // the worker skipped it too: only the blocker was ever evaluated.
    assert_eq!(stats.abandoned, 1, "{stats:?}");
    assert_eq!(stats.queries, 1, "{stats:?}");

    blocker.wait().expect("blocker answers");
    server.shutdown();
    assert_eq!(handle.stats().queue_depth, 0);
}

/// Dropping a ticket is a real cancellation: workers skip the job at
/// pickup instead of paying for an evaluation nobody will read.
#[test]
fn dropped_tickets_skip_evaluation_entirely() {
    const DROPPED: usize = 6;
    let catalog = chain_catalog([0.3, 0.7], [0.2, 0.5, 0.8], [0.6, 0.4]);
    let q = chain_query();
    let server = ProbDbServer::with_config(catalog, overload_config(1, 0, SLOW_SAMPLES));
    let handle = server.handle();
    let blocker = occupy_worker(&handle, &q);

    // Queue N requests behind the blocker, then walk away from all of
    // them before the worker can start any.
    let tickets: Vec<_> = (0..DROPPED)
        .map(|_| {
            handle
                .submit(q.clone(), Statistic::Probability)
                .expect("admitted")
        })
        .collect();
    drop(tickets);

    blocker.wait().expect("blocker answers");
    assert!(
        eventually(Duration::from_secs(20), || {
            handle.stats().abandoned == DROPPED as u64
        }),
        "workers did not skip the abandoned jobs: {:?}",
        handle.stats()
    );
    let stats = handle.stats();
    // Only the blocker was evaluated; the abandoned jobs cost nothing.
    assert_eq!(stats.queries, 1, "{stats:?}");
    server.shutdown();
    assert_eq!(handle.stats().queue_depth, 0);
}

/// Acceptance criterion: an identical-shape storm shares evaluations.
/// With one worker evaluating and another draining the queue, at least
/// 75% of the requests attach to an in-flight evaluation, and every
/// waiter gets bit-identical answers stamped with the same generation.
#[test]
fn identical_shape_storm_coalesces_to_shared_evaluations() {
    const STORM: usize = 16;
    let catalog = chain_catalog([0.3, 0.7], [0.2, 0.5, 0.8], [0.6, 0.4]);
    let q = chain_query();
    let server = ProbDbServer::with_config(catalog, overload_config(2, 0, SLOW_SAMPLES));
    let handle = server.handle();

    let tickets: Vec<_> = (0..STORM)
        .map(|_| {
            handle
                .submit(q.clone(), Statistic::Probability)
                .expect("admitted")
        })
        .collect();
    let served: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("storm request answers"))
        .collect();

    // Bit-identical fan-out, all stamped with the same generation.
    let reference = answer_bits(&served[0].answer);
    for s in &served {
        assert_eq!(answer_bits(&s.answer), reference);
        assert_eq!(s.generation, served[0].generation);
    }
    let stats = handle.stats();
    assert_eq!(stats.queries, STORM as u64);
    // Coalesced answers are served answers: the path invariant holds.
    assert_eq!(
        stats.exact + stats.monte_carlo + stats.hybrid,
        stats.queries,
        "{stats:?}"
    );
    assert!(
        stats.coalesced >= (STORM * 3 / 4) as u64,
        "storm did not coalesce: {stats:?}"
    );
    server.shutdown();
    assert_eq!(handle.stats().queue_depth, 0);
}

/// Coalescing can be opted out of; identical requests then each pay for
/// their own evaluation.
#[test]
fn coalescing_can_be_disabled() {
    let catalog = join_catalog(&[(0, 0.3), (1, 0.6)], &[(0, 0.5)]);
    let q = join_query();
    let config = ServeConfig {
        coalesce_requests: false,
        ..serve_config(2, 0)
    };
    let server = ProbDbServer::with_config(catalog, config);
    let handle = server.handle();
    for _ in 0..8 {
        handle.evaluate(&q, Statistic::Probability).unwrap();
    }
    let stats = handle.stats();
    assert_eq!(stats.coalesced, 0);
    assert_eq!(stats.queries, 8);
    server.shutdown();
}

/// `workers: 0` never degrades to a single worker, even on a 1-core
/// host: a long evaluation must not starve every other read. A fast
/// query completes while a slow one holds a worker.
#[test]
fn default_pool_reserves_a_second_worker_for_progress() {
    let catalog = chain_catalog([0.3, 0.7], [0.2, 0.5, 0.8], [0.6, 0.4]);
    let server = ProbDbServer::with_config(
        catalog,
        ServeConfig {
            engine: overload_config(0, 0, SLOW_SAMPLES).engine,
            ..ServeConfig::default()
        },
    );
    assert!(
        server.worker_count() >= 2,
        "workers: 0 resolved to {} workers",
        server.worker_count()
    );
    let handle = server.handle();
    // Different statistic → different coalesce key: the fast read is
    // never parked behind the slow one's in-flight entry.
    let blocker = handle
        .submit(chain_query(), Statistic::Probability)
        .expect("admitted");
    let fast = handle
        .evaluate(&chain_query(), Statistic::ExpectedCount)
        .expect("fast read completes while the blocker runs");
    assert!(matches!(fast.answer, QueryAnswer::Count { .. }));
    blocker.wait().expect("blocker answers");
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Queue-depth accounting is exact under racing submitters, dropped
    /// tickets, admission bounces and a concurrent shutdown: whatever
    /// interleaving happens, the gauge returns to zero (RAII decrements
    /// exactly once per enqueue) and every admitted ticket resolves.
    #[test]
    fn queue_accounting_survives_submit_shutdown_races(ops in prop::collection::vec(0u8..3, 24)) {
        const SUBMITTERS: usize = 3;
        let catalog = join_catalog(&[(0, 0.3), (1, 0.6)], &[(0, 0.5), (1, 0.25)]);
        let q = join_query();
        let server = ProbDbServer::with_config(
            catalog,
            ServeConfig { max_queue_depth: 2, ..serve_config(2, 0) },
        );
        let handle = server.handle();
        std::thread::scope(|scope| {
            for chunk in ops.chunks(ops.len() / SUBMITTERS) {
                let handle = handle.clone();
                let q = q.clone();
                scope.spawn(move || {
                    for &op in chunk {
                        // Admission bounces are expected under the tiny
                        // bound; admitted tickets are waited, timed out
                        // or dropped depending on the op.
                        let Ok(ticket) = handle.submit(q.clone(), Statistic::Probability) else {
                            continue;
                        };
                        match op {
                            0 => drop(ticket),
                            1 => {
                                let _ = ticket.wait_timeout(Duration::from_millis(1));
                            }
                            _ => {
                                let _ = ticket.wait();
                            }
                        }
                    }
                });
            }
            // Race a shutdown into the middle of the storm.
            scope.spawn(|| server.shutdown());
        });
        // Every enqueue was matched by exactly one dequeue, no matter
        // which path each job left by.
        prop_assert_eq!(handle.stats().queue_depth, 0);
    }
}
