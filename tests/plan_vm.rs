//! Bytecode-VM / plan-cache suite.
//!
//! The compiled route must be **bit-identical** to the reference
//! interpreter — not epsilon-close — for `Probability`,
//! `ProbabilityBounds` and `ExpectedCount`, on hierarchical shapes,
//! dissociable chains (branch-replica `Copy` nodes, both mass
//! transforms) and aliased self-joins. Warm cache hits must skip
//! classification, stay bit-identical after catalog data changes, and
//! invalidate themselves when a guarded data property flips.

use mrsl_repro::probdb::{
    Alternative, Block, Catalog, CatalogEngine, EvalPath, PlanClass, PlanRoute, Predicate, ProbDb,
    ProbDbError, Query, QueryEngineConfig, Statistic,
};
use mrsl_repro::relation::{AttrId, CompleteTuple, Schema, ValueId};
use proptest::prelude::*;

fn alt(values: Vec<u16>, prob: f64) -> Alternative {
    Alternative {
        tuple: CompleteTuple::from_values(values),
        prob,
    }
}

/// Interpreter reference: compiled plans off, brackets never refined.
fn interp_config() -> QueryEngineConfig {
    QueryEngineConfig {
        compile_plans: false,
        bounds_tolerance: 1.0,
        ..QueryEngineConfig::default()
    }
}

/// VM under test: compiled plans on (the default), brackets never
/// refined so bounds stay deterministic.
fn vm_config() -> QueryEngineConfig {
    QueryEngineConfig {
        bounds_tolerance: 1.0,
        ..QueryEngineConfig::default()
    }
}

/// Evaluates one statistic and returns the answer's float payload as raw
/// bits plus the report, so comparisons are exact by construction.
fn eval_bits(
    engine: &CatalogEngine,
    q: &Query,
    stat: Statistic,
) -> (Vec<u64>, PlanRoute, EvalPath, PlanClass) {
    use mrsl_repro::probdb::QueryAnswer;
    let (answer, report) = engine.evaluate(q, stat).expect("evaluates");
    let bits = match answer {
        QueryAnswer::Probability { p, std_error } => {
            let mut v = vec![p.to_bits()];
            v.extend(std_error.map(f64::to_bits));
            v
        }
        QueryAnswer::Bounds(b) => {
            let mut v = vec![b.lower.to_bits(), b.upper.to_bits()];
            v.extend(b.estimate.map(f64::to_bits));
            v.extend(b.std_error.map(f64::to_bits));
            v
        }
        QueryAnswer::Count { mean, std_error } => {
            let mut v = vec![mean.to_bits()];
            v.extend(std_error.map(f64::to_bits));
            v
        }
        other => panic!("unexpected answer shape: {other:?}"),
    };
    (bits, report.route, report.path, report.plan)
}

const STATS: [Statistic; 3] = [
    Statistic::Probability,
    Statistic::ProbabilityBounds,
    Statistic::ExpectedCount,
];

/// Asserts interpreter/VM bit-identity for all three cacheable statistics
/// and that re-evaluating on the VM engine is a bit-identical cache hit.
fn assert_vm_matches_interpreter(catalog: &Catalog, q: &Query) {
    let interp = CatalogEngine::with_config(catalog, interp_config());
    let vm = CatalogEngine::with_config(catalog, vm_config());
    for stat in STATS {
        let (ibits, iroute, ipath, iplan) = eval_bits(&interp, q, stat);
        assert_eq!(iroute, PlanRoute::Interpreted, "{stat:?}");
        let (vbits, vroute, vpath, vplan) = eval_bits(&vm, q, stat);
        let expected = if vpath == EvalPath::ExactColumnar || vpath == EvalPath::Hybrid {
            PlanRoute::Compiled
        } else {
            // Monte-Carlo verdicts run the interpreter's sampler; the
            // cache still stores the verdict.
            PlanRoute::Interpreted
        };
        assert_eq!(vroute, expected, "{stat:?}");
        assert_eq!(ibits, vbits, "cold VM diverges on {stat:?}");
        assert_eq!((ipath, iplan), (vpath, vplan), "{stat:?}");
        let (wbits, wroute, wpath, wplan) = eval_bits(&vm, q, stat);
        assert_eq!(wroute, PlanRoute::CacheHit, "{stat:?}");
        assert_eq!(ibits, wbits, "warm VM diverges on {stat:?}");
        assert_eq!((ipath, iplan), (wpath, wplan), "{stat:?}");
    }
    let stats = vm.plan_cache().stats();
    assert_eq!(stats.hits, 3, "{stats:?}");
    assert_eq!(stats.misses, 3, "{stats:?}");
}

/// `r(k, ok)`: every block sits at one key, present when `ok = yes`.
fn keyed_relation(blocks: &[(u16, f64)], certain: &[u16]) -> ProbDb {
    let schema = Schema::builder()
        .attribute("k", ["k0", "k1", "k2"])
        .attribute("ok", ["no", "yes"])
        .build()
        .unwrap();
    let mut db = ProbDb::new(schema);
    for &k in certain {
        db.push_certain(CompleteTuple::from_values(vec![k, 1]))
            .unwrap();
    }
    for (i, &(k, p)) in blocks.iter().enumerate() {
        db.push_block(Block::new(i, vec![alt(vec![k, 0], 1.0 - p), alt(vec![k, 1], p)]).unwrap())
            .unwrap();
    }
    db
}

fn ok() -> Predicate {
    Predicate::eq(AttrId(1), ValueId(1))
}

/// The unsafe chain `R(x), S(x,y), T(y)` with key-unique blocks, sized by
/// random presence probabilities — the dissociable fixture.
fn chain_catalog(rp: [f64; 2], sp: [f64; 3], tp: [f64; 2]) -> Catalog {
    let one = |n: &str| {
        Schema::builder()
            .attribute(n, ["v0", "v1"])
            .attribute("ok", ["no", "yes"])
            .build()
            .unwrap()
    };
    let two = Schema::builder()
        .attribute("x", ["v0", "v1"])
        .attribute("y", ["v0", "v1"])
        .attribute("ok", ["no", "yes"])
        .build()
        .unwrap();
    let pair = |k: u16, p: f64| vec![alt(vec![k, 0], 1.0 - p), alt(vec![k, 1], p)];
    let spair = |x: u16, y: u16, p: f64| vec![alt(vec![x, y, 0], 1.0 - p), alt(vec![x, y, 1], p)];
    let mut r = ProbDb::new(one("x"));
    r.push_block(Block::new(0, pair(0, rp[0])).unwrap())
        .unwrap();
    r.push_block(Block::new(1, pair(1, rp[1])).unwrap())
        .unwrap();
    let mut s = ProbDb::new(two);
    s.push_block(Block::new(0, spair(0, 1, sp[0])).unwrap())
        .unwrap();
    s.push_block(Block::new(1, spair(1, 0, sp[1])).unwrap())
        .unwrap();
    s.push_block(Block::new(2, spair(0, 0, sp[2])).unwrap())
        .unwrap();
    let mut t = ProbDb::new(one("y"));
    t.push_block(Block::new(0, pair(0, tp[0])).unwrap())
        .unwrap();
    t.push_block(Block::new(1, pair(1, tp[1])).unwrap())
        .unwrap();
    let mut catalog = Catalog::new();
    catalog.add("r", r).unwrap();
    catalog.add("s", s).unwrap();
    catalog.add("t", t).unwrap();
    catalog
}

fn chain_query() -> Query {
    let ok3 = Predicate::eq(AttrId(2), ValueId(1));
    Query::scan("r")
        .filter(ok())
        .join_on(Query::scan("s").filter(ok3), [(AttrId(0), AttrId(0))])
        .join_on_rel("s", Query::scan("t").filter(ok()), [(AttrId(1), AttrId(0))])
}

fn arb_prob() -> impl Strategy<Value = f64> {
    (1u32..=19).prop_map(|w| w as f64 / 20.0)
}

fn arb_keyed_blocks() -> impl Strategy<Value = Vec<(u16, f64)>> {
    prop::collection::vec((0u16..3, arb_prob()), 1..5)
}

fn arb_probs2() -> impl Strategy<Value = [f64; 2]> {
    (arb_prob(), arb_prob()).prop_map(|(a, b)| [a, b])
}

fn arb_probs3() -> impl Strategy<Value = [f64; 3]> {
    (arb_prob(), arb_prob(), arb_prob()).prop_map(|(a, b, c)| [a, b, c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hierarchical keyed joins: VM and interpreter are bit-identical on
    /// all three statistics, and warm hits stay so.
    #[test]
    fn vm_matches_interpreter_on_hierarchical_joins(
        ((lb, rb), (lc, rc)) in (
            (arb_keyed_blocks(), arb_keyed_blocks()),
            (
                prop::collection::vec(0u16..3, 0..3),
                prop::collection::vec(0u16..3, 0..3),
            ),
        )
    ) {
        let mut catalog = Catalog::new();
        catalog.add("left", keyed_relation(&lb, &lc)).unwrap();
        catalog.add("right", keyed_relation(&rb, &rc)).unwrap();
        let q = Query::scan("left").filter(ok()).join_on(
            Query::scan("right").filter(ok()),
            [(AttrId(0), AttrId(0))],
        );
        assert_vm_matches_interpreter(&catalog, &q);
    }

    /// Dissociable chains: the bounds programs (branch-replica copies,
    /// `1-(1-m)^(1/d)` lower / plain upper transforms, hoisted invariant
    /// subtrees) and the mass-join count program are bit-identical to the
    /// interpreter.
    #[test]
    fn vm_matches_interpreter_on_dissociable_chains(
        (rp, sp, tp) in (arb_probs2(), arb_probs3(), arb_probs2())
    ) {
        let catalog = chain_catalog(rp, sp, tp);
        assert_vm_matches_interpreter(&catalog, &chain_query());
    }

    /// Aliased self-joins: the conjunctive `m^(1/k)` upper transform and
    /// the shared-block lower bound are bit-identical to the interpreter.
    #[test]
    fn vm_matches_interpreter_on_aliased_self_joins(
        (blocks, certain) in (arb_keyed_blocks(), prop::collection::vec(0u16..3, 0..2))
    ) {
        let mut catalog = Catalog::new();
        catalog.add("r", keyed_relation(&blocks, &certain)).unwrap();
        let q = Query::scan_as("r", "r1").filter(ok()).join_on(
            Query::scan_as("r", "r2").filter(ok()),
            [(AttrId(0), AttrId(0))],
        );
        let interp = CatalogEngine::with_config(&catalog, interp_config());
        let vm = CatalogEngine::with_config(&catalog, vm_config());
        for stat in [Statistic::Probability, Statistic::ProbabilityBounds] {
            let (ibits, ..) = eval_bits(&interp, &q, stat);
            let (vbits, ..) = eval_bits(&vm, &q, stat);
            prop_assert_eq!(&ibits, &vbits, "cold {:?}", stat);
            let (wbits, wroute, ..) = eval_bits(&vm, &q, stat);
            prop_assert_eq!(wroute, PlanRoute::CacheHit, "{:?}", stat);
            prop_assert_eq!(&ibits, &wbits, "warm {:?}", stat);
        }
    }

    /// A warm cache hit after the catalog's data changed re-binds the
    /// cached program against the new columns and stays bit-identical to
    /// a cold interpreter run over the same data.
    #[test]
    fn warm_hits_track_catalog_mutations_bit_identically(
        ((rp, sp), (tp, np)) in ((arb_probs2(), arb_probs3()), (arb_probs2(), arb_prob()))
    ) {
        let mut catalog = chain_catalog(rp, sp, tp);
        let q = chain_query();
        let cache = {
            let engine = CatalogEngine::with_config(&catalog, vm_config());
            for stat in STATS {
                let (_, route, ..) = eval_bits(&engine, &q, stat);
                prop_assert_ne!(route, PlanRoute::CacheHit, "{:?}", stat);
            }
            engine.plan_cache().clone()
        };
        // Grow `s` by a fresh key-unique block: versions move, the
        // guards stay false, the cached plans stay valid.
        catalog
            .get_mut("s")
            .unwrap()
            .push_block(Block::new(3, vec![
                alt(vec![1, 1, 0], 1.0 - np),
                alt(vec![1, 1, 1], np),
            ]).unwrap())
            .unwrap();
        let warm = CatalogEngine::with_plan_cache(&catalog, vm_config(), cache.clone());
        let interp = CatalogEngine::with_config(&catalog, interp_config());
        for stat in STATS {
            let (ibits, ..) = eval_bits(&interp, &q, stat);
            let (wbits, wroute, ..) = eval_bits(&warm, &q, stat);
            prop_assert_eq!(wroute, PlanRoute::CacheHit, "{:?}", stat);
            prop_assert_eq!(ibits, wbits, "post-mutation warm hit diverges on {:?}", stat);
        }
        prop_assert_eq!(cache.stats().invalidations, 0);
    }
}

#[test]
fn nested_hierarchical_join_compiles_bit_identically() {
    // R(x) ⋈ S(x,y) ⋈ T(x,y): class {x} nests {y} — a depth-two
    // partition program with a real recursion level.
    let three = Schema::builder()
        .attribute("x", ["x0", "x1"])
        .attribute("y", ["y0", "y1"])
        .attribute("ok", ["no", "yes"])
        .build()
        .unwrap();
    let two = Schema::builder()
        .attribute("x", ["x0", "x1"])
        .attribute("ok", ["no", "yes"])
        .build()
        .unwrap();
    let mut r = ProbDb::new(two);
    r.push_block(Block::new(0, vec![alt(vec![0, 0], 0.6), alt(vec![0, 1], 0.4)]).unwrap())
        .unwrap();
    r.push_block(Block::new(1, vec![alt(vec![1, 0], 0.5), alt(vec![1, 1], 0.5)]).unwrap())
        .unwrap();
    let mut s = ProbDb::new(three.clone());
    s.push_certain(CompleteTuple::from_values(vec![0, 0, 1]))
        .unwrap();
    s.push_block(Block::new(0, vec![alt(vec![1, 0, 0], 0.5), alt(vec![1, 0, 1], 0.5)]).unwrap())
        .unwrap();
    s.push_block(Block::new(1, vec![alt(vec![0, 1, 0], 0.2), alt(vec![0, 1, 1], 0.8)]).unwrap())
        .unwrap();
    let mut t = ProbDb::new(three);
    t.push_block(Block::new(0, vec![alt(vec![0, 0, 0], 0.3), alt(vec![0, 0, 1], 0.7)]).unwrap())
        .unwrap();
    t.push_block(Block::new(1, vec![alt(vec![0, 1, 0], 0.6), alt(vec![0, 1, 1], 0.4)]).unwrap())
        .unwrap();
    t.push_certain(CompleteTuple::from_values(vec![1, 1, 1]))
        .unwrap();
    let mut catalog = Catalog::new();
    catalog.add("r", r).unwrap();
    catalog.add("s", s).unwrap();
    catalog.add("t", t).unwrap();
    let okp = Predicate::eq(AttrId(2), ValueId(1));
    let q = Query::scan("r")
        .filter(ok())
        .join_on(
            Query::scan("s").filter(okp.clone()),
            [(AttrId(0), AttrId(0))],
        )
        .join_on_rel(
            "s",
            Query::scan("t").filter(okp),
            [(AttrId(0), AttrId(0)), (AttrId(1), AttrId(1))],
        );
    assert_vm_matches_interpreter(&catalog, &q);
}

#[test]
fn cache_discriminates_shapes_and_evicts_lru() {
    let mut catalog = Catalog::new();
    catalog
        .add("r", keyed_relation(&[(0, 0.5), (1, 0.7)], &[2]))
        .unwrap();
    let engine = CatalogEngine::with_config(
        &catalog,
        QueryEngineConfig {
            plan_cache_capacity: 2,
            ..vm_config()
        },
    );
    let q_ok = Query::scan("r").filter(ok());
    let q_no = Query::scan("r").filter(Predicate::eq(AttrId(1), ValueId(0)));
    let q_all = Query::scan("r");
    // Different predicates are different shapes: each plans cold.
    engine.probability(&q_ok).unwrap();
    engine.probability(&q_no).unwrap();
    let stats = engine.plan_cache().stats();
    assert_eq!((stats.hits, stats.misses, stats.len), (0, 2, 2));
    let (_, report) = engine.probability(&q_ok).unwrap();
    assert_eq!(report.route, PlanRoute::CacheHit);
    // A third shape exceeds the capacity of 2 and evicts the least
    // recently used entry (`q_no`), which then misses again.
    engine.probability(&q_all).unwrap();
    let stats = engine.plan_cache().stats();
    assert_eq!((stats.len, stats.evictions), (2, 1));
    let (_, report) = engine.probability(&q_ok).unwrap();
    assert_eq!(report.route, PlanRoute::CacheHit);
    let (_, report) = engine.probability(&q_no).unwrap();
    assert_eq!(report.route, PlanRoute::Compiled);
    // The same shape under a different statistic is a separate entry
    // (which, at capacity, evicts again).
    engine.expected_count(&q_ok).unwrap();
    assert_eq!(engine.plan_cache().stats().evictions, 3);
    let (_, report) = engine.expected_count(&q_ok).unwrap();
    assert_eq!(report.route, PlanRoute::CacheHit);
}

#[test]
fn forced_monte_carlo_bypasses_the_cache() {
    let mut catalog = Catalog::new();
    catalog
        .add("r", keyed_relation(&[(0, 0.5), (1, 0.7)], &[]))
        .unwrap();
    let engine = CatalogEngine::with_config(
        &catalog,
        QueryEngineConfig {
            force_monte_carlo: true,
            mc_samples: 200,
            ..vm_config()
        },
    );
    let q = Query::scan("r").filter(ok());
    for _ in 0..2 {
        let (_, report) = engine.probability(&q).unwrap();
        assert_eq!(report.route, PlanRoute::Interpreted);
        assert_eq!(report.plan, PlanClass::ForcedMonteCarlo);
    }
    let stats = engine.plan_cache().stats();
    assert_eq!((stats.hits, stats.misses, stats.len), (0, 0, 0));
}

#[test]
fn interpreter_only_engines_never_touch_the_cache() {
    let mut catalog = Catalog::new();
    catalog.add("r", keyed_relation(&[(0, 0.5)], &[])).unwrap();
    let engine = CatalogEngine::with_config(&catalog, interp_config());
    let q = Query::scan("r").filter(ok());
    for _ in 0..2 {
        let (_, report) = engine.probability(&q).unwrap();
        assert_eq!(report.route, PlanRoute::Interpreted);
    }
    let stats = engine.plan_cache().stats();
    assert_eq!((stats.hits, stats.misses, stats.len), (0, 0, 0));
}

#[test]
fn flipped_straddle_guard_invalidates_the_entry() {
    // sensors ⋈ readings is liftable until a sensors block straddles the
    // join key; the data-version guard must catch the flip and replan.
    let schema = Schema::builder()
        .attribute("station", ["s0", "s1", "s2"])
        .attribute("kind", ["indoor", "outdoor"])
        .build()
        .unwrap();
    let mut sensors = ProbDb::new(schema.clone());
    sensors
        .push_block(Block::new(0, vec![alt(vec![0, 0], 0.5), alt(vec![0, 1], 0.5)]).unwrap())
        .unwrap();
    let mut readings = ProbDb::new(schema);
    readings
        .push_block(Block::new(0, vec![alt(vec![0, 0], 0.7), alt(vec![0, 1], 0.3)]).unwrap())
        .unwrap();
    let mut catalog = Catalog::new();
    catalog.add("sensors", sensors).unwrap();
    catalog.add("readings", readings).unwrap();
    let q = Query::scan("sensors").join_on("readings", [(AttrId(0), AttrId(0))]);
    let config = QueryEngineConfig {
        mc_samples: 200,
        ..vm_config()
    };
    let cache = {
        let engine = CatalogEngine::with_config(&catalog, config);
        let (_, report) = engine.probability(&q).unwrap();
        assert_eq!(report.route, PlanRoute::Compiled);
        assert_eq!(report.plan, PlanClass::Liftable);
        engine.plan_cache().clone()
    };
    // The new block's alternatives sit at *different* stations: the
    // station key is now correlated inside the block.
    catalog
        .get_mut("sensors")
        .unwrap()
        .push_block(Block::new(1, vec![alt(vec![1, 1], 0.5), alt(vec![2, 1], 0.5)]).unwrap())
        .unwrap();
    let engine = CatalogEngine::with_plan_cache(&catalog, config, cache.clone());
    let (_, report) = engine.probability(&q).unwrap();
    assert_eq!(report.route, PlanRoute::Interpreted);
    assert_eq!(report.path, EvalPath::MonteCarlo);
    assert_eq!(report.plan, PlanClass::KeyCorrelated);
    assert_eq!(cache.stats().invalidations, 1);
    // The replanned (sampled) verdict is itself cached.
    let (_, report) = engine.probability(&q).unwrap();
    assert_eq!(report.route, PlanRoute::CacheHit);
    assert_eq!(report.plan, PlanClass::KeyCorrelated);
}

#[test]
fn warm_monte_carlo_path_still_rejects_zero_samples() {
    let catalog = chain_catalog([0.6, 0.5], [0.7, 0.4, 0.5], [0.8, 0.3]);
    let q = chain_query();
    let cache = {
        let engine = CatalogEngine::with_config(&catalog, vm_config());
        // The chain's probability verdict is Monte Carlo; cache it.
        let (_, report) = engine.probability(&q).unwrap();
        assert_eq!(report.path, EvalPath::MonteCarlo);
        engine.plan_cache().clone()
    };
    let engine = CatalogEngine::with_plan_cache(
        &catalog,
        QueryEngineConfig {
            mc_samples: 0,
            ..vm_config()
        },
        cache,
    );
    let e = engine.probability(&q);
    assert!(matches!(e, Err(ProbDbError::NoSamples)), "{e:?}");
}
