#!/usr/bin/env python3
"""Bench-regression gate: committed reports vs .github/bench-baselines.json.

The bench reporters are self-timed and write their JSON only on full
(non-smoke) runs, so the committed BENCH_*.json files are the record of
what the code actually delivers. This gate keeps that record honest: a PR
that regenerates a report below a floor fails CI, and a PR that slows the
code without regenerating the report is caught the next time the report
is refreshed. Floors live in bench-baselines.json with generous headroom;
see the _comment there.
"""

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def load(name):
    path = ROOT / name
    if not path.exists():
        print(f"FAIL: {name} is missing (run the full bench to regenerate it)")
        sys.exit(1)
    with open(path) as f:
        return json.load(f)


def main():
    baselines = load(".github/bench-baselines.json")
    shard = load("BENCH_shard.json")
    serve = load("BENCH_serve.json")
    learn = load("BENCH_learn.json")
    failures = []

    def check(label, value, floor, at_least=True):
        ok = value >= floor if at_least else value <= floor
        op = ">=" if at_least else "<="
        status = "ok  " if ok else "FAIL"
        print(f"{status} {label}: {value:g} ({op} {floor:g})")
        if not ok:
            failures.append(label)

    # Warm-hit throughput of the hierarchical join probability: the
    # sequential fold over the 100k-block catalog, memoized registers hot.
    check(
        "join_probability.sequential.warm_qps",
        shard["join_probability"]["sequential"]["warm_qps"],
        baselines["join_probability_warm_qps_min"],
    )

    # The compiled VM's memoized mass tables must keep expected_count
    # ahead of the interpreter (the join_2k_blocks 0.98x regression).
    check(
        "expected_count.speedup",
        shard["expected_count"]["speedup"],
        baselines["expected_count_speedup_min"],
    )

    # Auto sharding on a sub-threshold binding must track the sequential
    # fold, not the forced fan-out (the 1.4us -> 393us regression).
    auto = shard["auto_small_binding"]
    check(
        "auto_small_binding warm_p50 slowdown vs sequential",
        auto["auto_8_threads"]["warm_p50_ns"] / auto["sequential"]["warm_p50_ns"],
        baselines["auto_small_binding_max_slowdown_vs_sequential"],
        at_least=False,
    )

    # Serving throughput with a live writer publishing generations: every
    # client-thread rung must stay above the floor.
    for key, row in sorted(serve["read_while_ingest"].items()):
        check(
            f"serve.read_while_ingest.{key}.qps",
            row["qps"],
            baselines["serve_read_while_ingest_qps_min"],
        )

    # Overload scenario: the identical-shape storm must actually share
    # evaluations, admission control must actually reject past the bound,
    # and the client-side wait_timeout must come back near its deadline.
    overload = serve["overload"]
    check(
        "serve.overload.storm.coalesced_share",
        overload["storm"]["coalesced_share"],
        baselines["serve_overload_coalesced_share_min"],
    )
    check(
        "serve.overload.admission.rejected_total",
        overload["admission"]["rejected_total"],
        baselines["serve_overload_rejected_min"],
    )
    check(
        "serve.overload.deadline.overshoot_p99_ms",
        overload["deadline"]["overshoot_p99_ms"],
        baselines["serve_overload_deadline_overshoot_ms_max"],
        at_least=False,
    )

    # The reverse sweep revisits each safe-plan node a constant number of
    # times, so probability_with_gradient must stay within a small factor
    # of the forward-only evaluation (both on cold engines).
    for key in ("gradient_selection", "gradient_join"):
        check(
            f"learn.{key}.overhead",
            learn[key]["overhead"],
            baselines["learn_gradient_overhead_max"],
            at_least=False,
        )

    # EM weight fitting over the four engines is a closed-form loop on
    # pre-scored holdout instances; it must stay interactive.
    check(
        "learn.weight_fit.fit_ms_p50",
        learn["weight_fit"]["fit_ms_p50"],
        baselines["learn_weight_fit_ms_max"],
        at_least=False,
    )

    if failures:
        print(f"\n{len(failures)} bench floor(s) violated")
        sys.exit(1)
    print("\nall bench floors hold")


if __name__ == "__main__":
    main()
